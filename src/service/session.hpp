#pragma once
/// \file session.hpp
/// Incremental model-edit sessions.
///
/// Real solve traffic is dominated by near-duplicates: an analyst tweaks
/// one cost, swaps a subtree, toggles a defense, and re-solves.  A
/// Session keeps the parsed model *and* per-node memo state alive
/// between requests, so a re-solve after a local edit only recomputes
/// the nodes on the edited leaf's root-path.
///
/// Two memo layers cooperate:
///
///  * A private NodeId-keyed memo: every node's last pruned front plus a
///    validity bit.  Edits invalidate exactly the edited node's
///    root-path (O(depth), the tree structure is stable), and the next
///    resolve pulls every still-valid subtree straight from the memo —
///    no hashing, no witness translation.  Structural edits
///    (replace-subtree) reset it.
///  * Optionally, the service-wide SubtreeCache (Options::shared):
///    fronts computed by this session become reusable by other sessions
///    and one-shot requests that share isomorphic subtrees — and after a
///    structural edit, unchanged subtrees can be *re*-covered from it by
///    canonical hash even though their NodeIds moved.
///
/// Edits mutate *base* decorations; `toggle-defense` layers the
/// defense-module hardening semantics on top (a defended BAS gets its
/// cost scaled and, in probabilistic models, its success probability
/// scaled), and resolve() solves the resulting effective model.  The
/// incremental fast path engages whenever the planner (or the explicit
/// engine choice) lands on an incremental-capable backend
/// (engine::Capabilities::incremental — bottom-up on treelike models);
/// otherwise resolve() transparently falls back to a full solve, so
/// sessions work on every model class the engines support.  The full-
/// solve fallback still feeds the shared SubtreeCache: the model's
/// maximal exclusively-owned treelike portions are swept into it, so
/// other sessions and treelike one-shot solves sharing those subtrees
/// reuse this session's work even though its own backend cannot.
///
/// Responses hand out the current model snapshot by shared pointer;
/// the first edit after a snapshot left the session copy-on-writes the
/// model, so resolve() does no per-call model copy and snapshots stay
/// immutable.
///
/// All methods are thread-safe (one mutex per session); a session's
/// resolve path never throws — failures surface as ok=false responses,
/// failed edits change nothing and return a message.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "defense/defense.hpp"
#include "obs/metrics.hpp"
#include "pareto/front_soa.hpp"
#include "service/service.hpp"
#include "service/subtree_cache.hpp"

namespace atcd::service {

class Session {
 public:
  struct Options {
    engine::Problem problem = engine::Problem::Cdpf;
    double bound = 0.0;        ///< budget/threshold; ignored by the fronts
    std::string engine_name;   ///< explicit engine; "" = planner's choice
    /// Registry/policy for the solve path; its cache/subtree hooks are
    /// ignored (the session supplies its own memo chain).
    engine::BatchOptions batch;
    /// Optional cross-session subtree cache layered under the private
    /// memo: fronts computed here become visible to other sessions and
    /// one-shot requests that share subtrees, and vice versa.
    SubtreeCache* shared = nullptr;
    /// toggle-defense hardening.  Defaults differ from defense.hpp's
    /// (infinite cost): sessions keep costs finite so every backend —
    /// including BILP on DAG models — stays numerically exact.  A
    /// defended zero-cost BAS is charged the bare factor.
    defense::HardeningSemantics hardening{1e9, 0.0};
    /// When false, responses carry no model snapshot (Response::det /
    /// Response::prob stay null).  Handing out a snapshot forces the
    /// next edit to copy-on-write the whole model — O(#nodes), which
    /// dwarfs the O(depth) incremental re-solve itself on edit-resolve
    /// loops.  Drivers that only consume Response::result (the analysis
    /// sweeps) turn this off and keep edits allocation-free.
    bool snapshots = true;
    /// Home for the session memo counters (atcd_session_memo_*_total);
    /// null = the session counts only in its private MemoStats.  The
    /// dispatcher passes its registry so session traffic shows up in
    /// the `metrics` op alongside the cache layers.
    obs::Registry* metrics = nullptr;
  };

  /// Private-memo counters (the shared cache keeps its own stats).
  struct MemoStats {
    std::uint64_t hits = 0;    ///< lookups served from a valid node
    std::uint64_t misses = 0;  ///< lookups on dirty/never-solved nodes
    std::uint64_t stores = 0;  ///< fronts (re)computed and memoized
  };

  /// Parses the textual model (at/parser.hpp format).  The model kind is
  /// chosen by the problem: probabilistic problems read prob=
  /// decorations, deterministic ones ignore them.  Throws ParseError /
  /// ModelError on bad input.
  Session(const std::string& model_text, Options options);
  Session(CdAt model, Options options);
  Session(CdpAt model, Options options);

  engine::Problem problem() const { return options_.problem; }
  bool probabilistic() const { return probabilistic_; }

  // -- Edit operations.  Return "" on success; on error the session is
  // unchanged and the message names the offending operand. -------------

  /// Sets the base cost of the named BAS (>= 0).
  std::string set_cost(const std::string& bas, double value);
  /// Sets the base success probability of the named BAS (in [0,1]);
  /// probabilistic sessions only.
  std::string set_prob(const std::string& bas, double value);
  /// Sets the damage of the named node (>= 0).
  std::string set_damage(const std::string& node, double value);
  /// Toggles hardening of the named BAS (Options::hardening semantics).
  std::string toggle_defense(const std::string& bas);
  /// Replaces the subtree rooted at the named node with the model parsed
  /// from \p subtree_text.  The replaced region must be exclusively
  /// owned (no node below the target is shared with the outside — always
  /// true on treelike models); the new subtree's node names must not
  /// collide with the surviving nodes'.
  std::string replace_subtree(const std::string& node,
                              const std::string& subtree_text);

  /// Re-solves the current effective model.  Never throws; solver
  /// failures come back as ok=false results.  The response's det/prob
  /// snapshot is immutable — later edits copy-on-write around it.
  Response resolve();

  std::uint64_t edit_count() const;
  std::uint64_t resolve_count() const;

  /// The current effective model (defense hardening applied) as an
  /// immutable snapshot — exactly what resolve() solves.  Null for the
  /// other kind.
  std::shared_ptr<const CdAt> snapshot_det();
  std::shared_ptr<const CdpAt> snapshot_prob();

  MemoStats memo_stats() const;

 private:
  class NodeMemoVisitor;
  class MemoAdapter;
  friend class NodeMemoVisitor;
  friend class MemoAdapter;

  void init(AttackTree tree, std::vector<double> cost,
            std::vector<double> damage, std::vector<double> prob);
  const AttackTree& tree() const {
    return det_ ? det_->tree : prob_->tree;
  }
  /// Clones the working model iff it was handed out since the last
  /// clone, so edits never mutate a snapshot a caller may be holding.
  void ensure_unique();
  /// Invalidates the memo for \p v and every (transitive) parent.
  void mark_dirty(NodeId v);
  /// DAG-fallback cache population: a non-treelike model routes to a
  /// non-incremental backend that never touches the memo chain, which
  /// would leave the shared SubtreeCache cold even though the model's
  /// exclusively-owned treelike portions have perfectly cacheable
  /// fronts.  This sweeps each maximal such portion bottom-up through
  /// the shared cache (skipping portions whose root front is already
  /// cached), so treelike models and other sessions sharing those
  /// subtrees still reuse this session's work.
  void populate_shared_portions();
  /// The budget-class the chosen problem's sweep prunes with.
  double memo_budget() const;
  Response resolve_locked();

  mutable std::mutex mu_;
  Options options_;
  bool probabilistic_ = false;

  /// The working effective model (hardening applied); shared with
  /// responses, copy-on-write on edit.  Exactly one is non-null.
  std::shared_ptr<CdAt> det_;
  std::shared_ptr<CdpAt> prob_;
  /// True once the current model pointer was handed to a caller; the
  /// next edit then clones before mutating (see ensure_unique()).
  bool handed_out_ = false;

  // Defense bookkeeping: base (undefended) values per BAS index.
  std::vector<double> base_cost_;
  std::vector<double> base_prob_;
  std::vector<bool> defended_;

  // Private per-node memo; indexed by NodeId of the current tree.
  // Fronts are kept in SoA form (per-node TripleBuf columns): the arena
  // sweep's memo hits and stores are then contiguous column copies
  // instead of per-triple heap walks — on a single-leaf-edit re-solve
  // the memo boundary IS the hot path, every clean sibling of the dirty
  // root-path enters through it.  The AoS lookup()/store() protocol
  // converts at the boundary, so the pointer sweep sees identical bytes.
  std::vector<char> memo_valid_;
  std::vector<TripleBuf> memo_soa_;
  std::vector<char> dirty_seen_;  ///< scratch for mark_dirty's walk
  /// DAG fallback only: portion roots already swept into the shared
  /// cache and unedited since (cleared by mark_dirty like the memo), so
  /// warm resolves skip even the extraction.  A shared-cache eviction
  /// can outlive this marker; the portion is then re-offered on the
  /// session's next edit under it.
  std::vector<char> portion_valid_;
  MemoStats memo_stats_;
  /// Registry mirrors of memo_stats_ (Options::metrics); fed by delta
  /// once per resolve rather than per memo probe — the memo lookups run
  /// under the session mutex, so batching the registry adds keeps the
  /// incremental hot path untouched.  Null when no registry was given.
  obs::Counter* memo_hits_c_ = nullptr;
  obs::Counter* memo_misses_c_ = nullptr;
  obs::Counter* memo_stores_c_ = nullptr;

  CanonHash hash_ = 0;       ///< fingerprint of the working model
  bool hash_dirty_ = true;
  /// Incremental Merkle state for treelike models: per-node hashes plus
  /// validity bits, invalidated along the same root-path walk as the
  /// front memo, so a post-edit resolve rehashes O(depth) nodes instead
  /// of the whole tree.
  std::vector<std::uint64_t> fp_hash_;
  std::vector<char> fp_valid_;
  std::uint64_t edits_ = 0;
  std::uint64_t resolves_ = 0;
};

/// Id -> Session registry shared by a server's connections.  Thread-safe;
/// sessions are handed out as shared_ptr so a close() during a concurrent
/// resolve() is safe (the session dies when the last user drops it).
class SessionManager {
 public:
  /// Registers a session and returns its id (ids start at 1).
  std::uint64_t open(std::unique_ptr<Session> session);

  /// Looks a session up; null when unknown/closed.
  std::shared_ptr<Session> find(std::uint64_t id) const;

  /// Closes a session; false when unknown.
  bool close(std::uint64_t id);

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
};

}  // namespace atcd::service
