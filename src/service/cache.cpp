#include "service/cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/trace.hpp"
#include "service/hash_mix.hpp"
#include "service/subtree_cache.hpp"

namespace atcd::service {
namespace {

std::size_t approx_bytes(const AttackTree& t) {
  std::size_t b = sizeof(AttackTree) +
                  t.node_count() * sizeof(AttackTree::Node) +
                  (t.node_count() + t.bas_count()) * sizeof(NodeId);
  for (NodeId v = 0; v < static_cast<NodeId>(t.node_count()); ++v) {
    const auto& n = t.node(v);
    b += n.name.size() +
         (n.children.size() + n.parents.size()) * sizeof(NodeId);
  }
  return b;
}

std::size_t approx_bytes(const DynBitset& x) {
  return sizeof(DynBitset) + (x.size() + 63) / 64 * 8;
}

std::size_t approx_bytes(const engine::SolveResult& r) {
  std::size_t b = sizeof(engine::SolveResult) + r.error.size() +
                  r.backend.size() + approx_bytes(r.attack.witness);
  for (const auto& p : r.front.points())
    b += sizeof(FrontPoint) + approx_bytes(p.witness);
  return b;
}

std::size_t entry_bytes(const CacheKey& key, const CdAt* det,
                        const CdpAt* prob, const engine::SolveResult& r) {
  std::size_t b = sizeof(CacheKey) + key.backend.size() + approx_bytes(r);
  if (det)
    b += sizeof(CdAt) + approx_bytes(det->tree) +
         (det->cost.size() + det->damage.size()) * sizeof(double);
  if (prob)
    b += sizeof(CdpAt) + approx_bytes(prob->tree) +
         (prob->cost.size() + prob->damage.size() + prob->prob.size()) *
             sizeof(double);
  return b;
}

}  // namespace

std::size_t hash_of(const CacheKey& key) {
  std::uint64_t h = mix64(0xCAC4Eull, key.model);
  h = mix64(h, static_cast<std::uint64_t>(key.problem));
  h = mix64(h, std::bit_cast<std::uint64_t>(key.bound == 0.0 ? 0.0 : key.bound));
  for (char c : key.backend) h = mix64(h, static_cast<unsigned char>(c));
  return static_cast<std::size_t>(h);
}

std::optional<CacheKey> make_key(const engine::Instance& in) {
  if (!engine::instance_error(in).empty()) return std::nullopt;
  if (!engine::is_front(in.problem) && !std::isfinite(in.bound))
    return std::nullopt;
  CacheKey key;
  key.model = engine::is_probabilistic(in.problem)
                  ? model_fingerprint(*in.prob)
                  : model_fingerprint(*in.det);
  key.problem = in.problem;
  key.bound = engine::is_front(in.problem) ? 0.0 : in.bound;
  key.backend = in.backend;
  return key;
}

void remap_witnesses(const AttackTree& from, const AttackTree& to,
                     const std::vector<NodeId>& iso,
                     engine::SolveResult* result) {
  const std::size_t n_bas = from.bas_count();
  std::vector<std::uint32_t> bas_remap(n_bas);
  bool identity = true;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(n_bas); ++i) {
    bas_remap[i] = to.bas_index(iso[from.bas_id(i)]);
    identity = identity && bas_remap[i] == i;
  }
  if (identity) return;

  const auto rewrite = [&](const DynBitset& w) {
    DynBitset out(w.size());
    for (std::size_t i : w.ones()) out.set(bas_remap[i]);
    return out;
  };
  if (result->attack.witness.size() == n_bas)
    result->attack.witness = rewrite(result->attack.witness);
  if (!result->front.empty()) {
    std::vector<FrontPoint> points(result->front.begin(),
                                   result->front.end());
    for (auto& p : points) p.witness = rewrite(p.witness);
    // Re-running the front builder on already-minimal points keeps the
    // same values in the same order; only the witnesses changed.
    result->front = Front2d::of_candidates(std::move(points));
  }
}

ResultCache::ResultCache() : ResultCache(Config{}) {}

ResultCache::ResultCache(Config config) : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  entry_budget_per_shard_ =
      std::max<std::size_t>(1, (config_.max_entries + config_.shards - 1) /
                                   config_.shards);
  byte_budget_per_shard_ =
      std::max<std::size_t>(1, (config_.max_bytes + config_.shards - 1) /
                                   config_.shards);
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
  obs::Registry* reg = config_.metrics;
  if (!reg) {
    owned_metrics_ = std::make_unique<obs::Registry>();
    reg = owned_metrics_.get();
  }
  hits_ = &reg->counter("atcd_result_cache_hits_total");
  misses_ = &reg->counter("atcd_result_cache_misses_total");
  insertions_ = &reg->counter("atcd_result_cache_insertions_total");
  evictions_ = &reg->counter("atcd_result_cache_evictions_total");
  collisions_ = &reg->counter("atcd_result_cache_collisions_total");
}

std::size_t ResultCache::shard_index(const CacheKey& key) const {
  // Re-mix so the shard choice and the unordered_map bucket choice use
  // decorrelated bits.
  return static_cast<std::size_t>(mix64(0x54A2Dull, hash_of(key))) %
         shards_.size();
}

std::optional<engine::SolveResult> ResultCache::lookup(const CacheKey& key,
                                                       const CdAt* det,
                                                       const CdpAt* prob,
                                                       bool count_stats) {
  Shard& shard = *shards_[shard_index(key)];
  // Under the lock only find, refresh recency, and grab shared pointers;
  // the isomorphism deep check, result copy, and witness remap all run
  // outside so concurrent hits on the same shard don't serialize.
  // Entries are immutable after insertion, so the pointers stay valid
  // even if the entry is evicted concurrently.
  std::shared_ptr<const CdAt> e_det;
  std::shared_ptr<const CdpAt> e_prob;
  std::shared_ptr<const engine::SolveResult> e_result;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      if (count_stats) {
        misses_->add(1);
        obs::trace_fact("result_cache_misses", 1);
      }
      return std::nullopt;
    }
    const Entry& e = *it->second;
    e_det = e.det;
    e_prob = e.prob;
    e_result = e.result;
    // Refreshing recency before the deep check means an (astronomically
    // rare) colliding probe also touches the entry — harmless.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  }
  // Guard against canonical-hash collisions: the entry's retained model
  // must be semantically identical to the probe model.  The bijection
  // also translates the stored witnesses into the probe's BAS indexing
  // (an isomorphic resubmission may number its leaves differently).
  const std::vector<NodeId> iso =
      e_det ? (det ? canonical_isomorphism(*e_det, *det)
                   : std::vector<NodeId>{})
            : (prob ? canonical_isomorphism(*e_prob, *prob)
                    : std::vector<NodeId>{});
  if (iso.empty()) {
    if (count_stats) {
      collisions_->add(1);
      misses_->add(1);
      obs::trace_fact("result_cache_misses", 1);
    }
    return std::nullopt;
  }
  if (count_stats) {
    hits_->add(1);
    obs::trace_fact("result_cache_hits", 1);
  }
  engine::SolveResult out = *e_result;
  remap_witnesses(e_det ? e_det->tree : e_prob->tree,
                  det ? det->tree : prob->tree, iso, &out);
  return out;
}

void ResultCache::insert(const CacheKey& key, std::shared_ptr<const CdAt> det,
                         std::shared_ptr<const CdpAt> prob,
                         const engine::SolveResult& result) {
  const std::size_t bytes = entry_bytes(key, det.get(), prob.get(), result);
  if (bytes > byte_budget_per_shard_) return;  // would evict a whole shard
  Shard& shard = *shards_[shard_index(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    Entry& e = *it->second;
    const bool same =
        e.det ? (det != nullptr && equal_canonical(*e.det, *det))
              : (prob != nullptr && equal_canonical(*e.prob, *prob));
    if (!same) {
      // True hash collision: keep the incumbent; replacing it would let
      // the two models keep evicting each other's entry.
      collisions_->add(1);
      return;
    }
    // Same canonical model: the incumbent result is equivalent and its
    // witnesses already match the retained model's BAS indexing (the new
    // result's witnesses may not — it could be a permuted resubmission),
    // so just refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(
      Entry{key, std::move(det), std::move(prob),
            std::make_shared<engine::SolveResult>(result), bytes});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  insertions_->add(1);
  evict_to_budget(shard);
}

void ResultCache::evict_to_budget(Shard& shard) {
  while (!shard.lru.empty() && (shard.lru.size() > entry_budget_per_shard_ ||
                                shard.bytes > byte_budget_per_shard_)) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_->add(1);
  }
}

bool ResultCache::lookup(const engine::Instance& in,
                         engine::SolveResult* out) {
  const auto key = make_key(in);
  if (!key) return false;
  auto r = lookup(*key, in.det, in.prob);
  if (!r) return false;
  *out = std::move(*r);
  return true;
}

void ResultCache::store(const engine::Instance& in,
                        const engine::SolveResult& result) {
  if (!result.ok) return;
  const auto key = make_key(in);
  if (!key) return;
  // The hook borrows caller-owned models, so retain private copies for
  // the collision deep check.
  std::shared_ptr<const CdAt> det;
  std::shared_ptr<const CdpAt> prob;
  if (engine::is_probabilistic(in.problem))
    prob = std::make_shared<CdpAt>(*in.prob);
  else
    det = std::make_shared<CdAt>(*in.det);
  insert(*key, std::move(det), std::move(prob), result);
}

std::vector<ResultCache::ExportedEntry> ResultCache::export_entries() const {
  std::vector<ExportedEntry> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it)
      out.push_back({it->key, it->det, it->prob, it->result});
  }
  return out;
}

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  s.hits = hits_->value();
  s.misses = misses_->value();
  s.insertions = insertions_->value();
  s.evictions = evictions_->value();
  s.collisions = collisions_->value();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.entries += shard->lru.size();
    s.bytes += shard->bytes;
  }
  return s;
}

void ResultCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

}  // namespace atcd::service
