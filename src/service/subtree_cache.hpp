#pragma once
/// \file subtree_cache.hpp
/// Sharded LRU cache of per-subtree bottom-up fronts.
///
/// The bottom-up engines are compositional: the pruned front C^P_U(v) of
/// a node depends only on the decorated subtree below v and the pruning
/// budget.  This cache memoizes those fronts *across solves and across
/// models*: entries are keyed by a canonical subtree fingerprint that is
/// invariant under node renaming and child reordering, so two distinct
/// models sharing an isomorphic subtree (analysts copying library
/// components, edit sessions re-solving after a local change) reuse each
/// other's work.
///
/// Keying.  Treelike subtrees admit an exact canonical form with no WL
/// refinement: a Merkle-style signature built bottom-up with child
/// signatures sorted (service/canon.hpp's machinery is for whole DAGs;
/// the bottom-up engines only run on trees).  The signature embeds node
/// types and all decorations bit-exactly — cost, damage, and success
/// probability, with the deterministic sweep's implicit p = 1 spelled
/// out so deterministic models and all-ones probabilistic models share
/// entries, exactly mirroring core/bottom_up_core.hpp's embedding.  The
/// cache key is a 64-bit hash of the signature plus the pruning budget
/// (budget pruning makes fronts budget-dependent); every entry retains
/// its full signature and lookups deep-check it, so a hash collision
/// costs a miss, never a wrong front.
///
/// Witnesses.  Cached witnesses live in a canonical subtree-local leaf
/// space (leaves in signature-sorted child order).  A Binding translates
/// them to/from the host model's BAS indexing; between isomorphic
/// subtrees the canonical order maps decoration-identical leaves onto
/// each other, so a translated witness evaluates to exactly the cached
/// (cost, damage, activation) values in its new host.
///
/// Unlike ResultCache, entries retain only the signature string and the
/// local fronts — never the model — so enabling both caches on one
/// BatchOptions counts every byte exactly once (each cache accounts its
/// own storage; tests/test_subtree_cache.cpp asserts the additivity).

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/batch.hpp"
#include "obs/metrics.hpp"

namespace atcd::service {

/// Merkle fingerprint of a finalized *treelike* decorated model — the
/// hash the subtree cache keys the model's root entry on.  Invariant
/// under renaming and child reordering (children fold in sorted-hash
/// order) and sensitive to all decorations; an order of magnitude
/// cheaper than canon.hpp's WL canonical_hash, which handles DAGs.
/// Returns 0 for non-treelike models.  \p prob null means deterministic
/// (hashed as all-ones, mirroring the bottom-up embedding).
std::uint64_t treelike_fingerprint(const AttackTree& tree,
                                   const std::vector<double>& cost,
                                   const std::vector<double>& damage,
                                   const std::vector<double>* prob);

/// Incremental treelike_fingerprint(): \p node_hash / \p node_valid
/// persist across calls (resized here on first use or structural
/// change), and only nodes with a cleared validity bit are rehashed.
/// The caller must clear the bit of every node whose decorations (or
/// descendants) changed *and of all its ancestors* — exactly the
/// root-path walk session edits already do for the front memo.  Returns
/// the root hash, identical to treelike_fingerprint() on the same model.
std::uint64_t treelike_fingerprint_update(
    const AttackTree& tree, const std::vector<double>& cost,
    const std::vector<double>& damage, const std::vector<double>* prob,
    std::vector<std::uint64_t>* node_hash, std::vector<char>* node_valid);

/// The model fingerprint used uniformly across the serving layer — by
/// the result-cache key, one-shot responses, and session responses — so
/// the protocol's hash= field identifies a model consistently no matter
/// which path served it: the Merkle fingerprint for treelike models
/// (fast path), canon.hpp's WL canonical_hash for DAGs.  Both are
/// isomorphism-invariant; consumers that need exactness still deep-check
/// with equal_canonical() (the cache does).
std::uint64_t model_fingerprint(const CdAt& m);
std::uint64_t model_fingerprint(const CdpAt& m);

/// Thread-safe, sharded, byte- and entry-budgeted subtree front cache.
/// Implements engine::SubtreeMemo, so it attaches directly to
/// engine::BatchOptions::subtree (and through it to the solve service
/// and incremental sessions).
class SubtreeCache final : public engine::SubtreeMemo {
 public:
  struct Config {
    std::size_t shards = 8;             ///< mutex stripes; >= 1
    std::size_t max_entries = 65536;    ///< whole-cache entry budget
    std::size_t max_bytes = 64u << 20;  ///< whole-cache byte budget
    /// Subtrees with fewer leaves are not cached: their fronts are
    /// cheaper to recompute than to look up and remap.
    std::size_t min_leaves = 2;
    /// Home for the cache's counters (atcd_subtree_cache_*).  Null = a
    /// private registry (standalone instances stay isolated).
    obs::Registry* metrics = nullptr;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;   ///< entries dropped by LRU/budget
    std::uint64_t collisions = 0;  ///< equal-key probes failing the deep check
    std::size_t entries = 0;       ///< current resident entries
    std::size_t bytes = 0;         ///< current approximate resident bytes
  };

  SubtreeCache();  // default Config (GCC can't parse `= {}` here)
  explicit SubtreeCache(Config config);

  /// engine::SubtreeMemo: binds a visitor to (model, budget).  Returns
  /// nullptr for non-treelike or unfinalized models (the bottom-up
  /// engines reject those anyway).
  std::unique_ptr<atcd::detail::SubtreeVisitor> bind(const CdAt& m,
                                                     double budget) override;
  std::unique_ptr<atcd::detail::SubtreeVisitor> bind(const CdpAt& m,
                                                     double budget) override;

  /// Decomposed form of bind(); \p prob may be null (deterministic).
  std::unique_ptr<atcd::detail::SubtreeVisitor> bind(
      const AttackTree& tree, const std::vector<double>& cost,
      const std::vector<double>& damage, const std::vector<double>* prob,
      double budget);

  Stats stats() const;
  void clear();

  std::size_t shard_count() const { return shards_.size(); }

  /// One resident entry in snapshot form (src/persist/): the key
  /// components, the full canonical signature, and the local-space
  /// front.  Byte bookkeeping is not exported — restore recomputes it.
  struct ExportedEntry {
    std::uint64_t hash = 0;
    double budget = 0.0;
    std::shared_ptr<const std::string> sig;
    std::shared_ptr<const std::vector<AttrTriple>> front;
  };

  /// Every resident entry, shard by shard, least-recently-used first
  /// within each shard — replaying the list through restore_entry()
  /// into an empty cache reproduces contents and recency order, and
  /// into a smaller cache evicts exactly the least recent entries.
  std::vector<ExportedEntry> export_entries() const;

  /// Re-inserts one exported entry through the normal put() path: the
  /// entry lands at MRU of its shard, budgets are enforced (over-budget
  /// loads evict in LRU order), and bytes are recomputed from scratch.
  void restore_entry(std::uint64_t hash, double budget,
                     const std::string& sig, std::vector<AttrTriple> front);

 private:
  friend class SubtreeBinding;

  struct Key {
    std::uint64_t hash = 0;   ///< signature hash
    double budget = 0.0;      ///< normalized pruning budget (inf = none)
    bool operator==(const Key&) const = default;
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const;
  };

  struct Entry {
    Key key;
    /// Full canonical signature — the collision guard.  Shared immutable
    /// (like `front`) so lookups can run the deep check outside the
    /// shard lock even if the entry is evicted concurrently.
    std::shared_ptr<const std::string> sig;
    /// The subtree's pruned front; witnesses over the canonical local
    /// leaf space (size = subtree leaf count).
    std::shared_ptr<const std::vector<AttrTriple>> front;
    std::size_t bytes = 0;
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHasher> index;
    std::size_t bytes = 0;  ///< resident bytes; guarded by mu
  };

  Shard& shard_of(const Key& key);

  /// Returns the entry's front when the key is present and the signature
  /// deep check passes; counts hit/miss/collision.  \p sig_of is invoked
  /// only when the key is present — signature materialization is lazy,
  /// which is what keeps warm re-solves cheap.
  std::shared_ptr<const std::vector<AttrTriple>> find(
      const Key& key, const std::function<const std::string&()>& sig_of);

  /// Inserts a front (local witness space); keeps the incumbent on an
  /// equal-key entry (refreshing recency when the signature matches,
  /// counting a collision otherwise).
  void put(const Key& key, const std::string& sig,
           std::vector<AttrTriple> front);

  /// Drops LRU-tail entries until the shard is within both budgets.
  /// Caller holds the shard lock.
  void evict_to_budget(Shard& shard);

  Config config_;
  std::size_t entry_budget_per_shard_;
  std::size_t byte_budget_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Registry-backed counters (see Config::metrics); resolved once at
  // construction so hot-path counting is a single sharded relaxed add.
  std::unique_ptr<obs::Registry> owned_metrics_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* insertions_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* collisions_ = nullptr;
};

/// Chains two memo layers: lookups consult \p primary first, then
/// \p fallback — promoting fallback hits into primary — and stores feed
/// both.  Sessions use this to layer their private per-session memo over
/// the service's shared cross-session cache.  Either layer may be null.
class ChainedSubtreeMemo final : public engine::SubtreeMemo {
 public:
  ChainedSubtreeMemo(engine::SubtreeMemo* primary,
                     engine::SubtreeMemo* fallback)
      : primary_(primary), fallback_(fallback) {}

  std::unique_ptr<atcd::detail::SubtreeVisitor> bind(const CdAt& m,
                                                     double budget) override;
  std::unique_ptr<atcd::detail::SubtreeVisitor> bind(const CdpAt& m,
                                                     double budget) override;

 private:
  std::unique_ptr<atcd::detail::SubtreeVisitor> chain(
      std::unique_ptr<atcd::detail::SubtreeVisitor> a,
      std::unique_ptr<atcd::detail::SubtreeVisitor> b);

  engine::SubtreeMemo* primary_;
  engine::SubtreeMemo* fallback_;
};

}  // namespace atcd::service
