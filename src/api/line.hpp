#pragma once
/// \file line.hpp
/// Legacy line-protocol transcoder.
///
/// The original line-oriented protocol (service/protocol.hpp) predates
/// the typed API; it stays supported, but it is now a *codec*: each
/// command line (plus any model block) transcodes into an api::Request,
/// and each api::Response renders back into the familiar key=value
/// block terminated by `done`.  service/protocol.cpp is a thin loop
/// over these two functions and api::Dispatcher — the line protocol and
/// the JSON envelope can never diverge in behavior, only in syntax.
///
/// Parsing preserves the historical error messages and the desync
/// guard: a `solve`/`open`/`analyze` line (and a `replace-subtree`
/// edit) is always followed by a model block, which is consumed even
/// when the header is invalid so the stream never desyncs.

#include <iosfwd>
#include <string>

#include "api/api.hpp"

namespace atcd::api::detail {

/// Strips leading/trailing spaces, tabs, and CRs — shared by the line
/// transcoder and both serving loops.
std::string trim(const std::string& s);

}  // namespace atcd::api::detail

namespace atcd::api {

/// One transcoded line-protocol request.
struct LineRequest {
  Request request;                 ///< valid when code == Ok
  ErrorCode code = ErrorCode::Ok;  ///< typed parse failure otherwise
  std::string error;               ///< message for the error block
  /// `stats --json`: a line-format detail (render the stats payload as
  /// one json= line), not part of the typed operation.
  bool stats_json = false;
  /// `metrics --json`: render the registry JSON as one json= line
  /// instead of the Prometheus text rows.
  bool metrics_json = false;
};

/// Transcodes one command line into a typed request, consuming a model
/// block from \p in when the command carries one.  \p line must be
/// trimmed, comment-stripped, and non-empty.
LineRequest read_line_request(const std::string& line, std::istream& in);

/// Renders a response as the legacy key=value block (`ok=...` ...
/// `done`).  Solve payloads render exactly as the historical
/// format_response(); errors as `ok=false` / `error=` blocks.
std::string format_line(const Response& response);

/// Renders the stats payload as the single machine-readable `json=`
/// line of `stats --json` (stable key order).
std::string format_stats_json_line(const StatsPayload& stats);

/// Renders the metrics payload as the single machine-readable `json=`
/// line of `metrics --json` (the registry's canonical JSON verbatim).
std::string format_metrics_json_line(const MetricsPayload& metrics);

}  // namespace atcd::api
