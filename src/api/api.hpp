#pragma once
/// \file api.hpp
/// The versioned, typed request/response surface of the library (v1).
///
/// Three entry points accreted around the solve service — `solve`-style
/// text requests, the open/edit/resolve session commands, and the
/// `analyze` commands — each with its own ad-hoc argument handling and
/// free-form `ok=false` error strings.  This header replaces all of
/// them with ONE wire-format-independent model:
///
///   * api::Request  — a closed variant of every operation a client can
///     ask for (solve, batch, session open/edit/resolve/close, the
///     three analyses, stats, shutdown), plus a client-supplied request
///     id echoed on the response so pipelined transports can complete
///     out of order.
///   * api::Response — the echoed id, a closed error taxonomy
///     (api::ErrorCode) instead of string matching, serving metadata
///     (cache disposition, canonical hash, wall micros), and a typed
///     payload variant.
///
/// Transports are thin codecs over this model: the versioned JSON
/// envelope (api/json.hpp, `{"v":1,"id":...,"op":...}`) and the legacy
/// line protocol (api/line.hpp) both transcode to exactly these structs
/// and dispatch through the same api::Dispatcher (api/dispatcher.hpp),
/// so the CLI, the server, benches, and any future transport cannot
/// drift: an operation either exists here, typed, or it does not exist.

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "engine/backend.hpp"
#include "service/cache.hpp"
#include "service/subtree_cache.hpp"

namespace atcd::api {

/// Wire-format major version of the envelope this header models.
inline constexpr int kVersion = 1;

// ---------------------------------------------------------------------------
// Error taxonomy.
// ---------------------------------------------------------------------------

/// Closed error taxonomy of the v1 API.  Every failure a request can
/// produce maps to exactly one code; the human-readable message rides
/// along in Response::error but clients branch on the code alone.
enum class ErrorCode {
  Ok = 0,
  MalformedRequest,    ///< unparseable envelope (bad JSON, bad line syntax,
                       ///< unterminated model block, missing v/op)
  UnsupportedVersion,  ///< envelope "v" is not kVersion
  UnknownOperation,    ///< "op" (or line command) not in the v1 vocabulary
  InvalidArgument,     ///< well-formed request with a bad field (unknown
                       ///< problem/engine, non-finite bound, bad axis or
                       ///< defense spec, bad edit operand, ...)
  ParseError,          ///< the model text was rejected by the parser
  ModelError,          ///< structurally invalid model, or model/problem
                       ///< mismatch (e.g. probabilistic problem on a model
                       ///< without probabilities)
  NoSuchSession,       ///< session id unknown or already closed
  Capacity,            ///< a deliberate capacity guard tripped (portfolio
                       ///< catalogue size, enumeration limits)
  SolverFailure,       ///< the backend ran and failed (unsupported class,
                       ///< numeric failure, infeasibility where required)
  Internal,            ///< unexpected exception; a bug, not a client error
  PersistError,        ///< a cache snapshot could not be saved or loaded
                       ///< (missing/corrupt/foreign file, write failure)
};

/// Stable wire string of a code ("ok", "parse_error", ...).
const char* to_string(ErrorCode code);

/// Inverse of to_string(); nullopt for unknown strings.
std::optional<ErrorCode> parse_error_code(const std::string& name);

/// Deterministic process exit code for CLI front-ends: 0 ok, 2 usage
/// (malformed/unknown/invalid-argument/no-such-session), 3 model
/// (parse/model errors), 4 solver (solver/capacity/internal failures).
int exit_code(ErrorCode code);

// ---------------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------------

/// The common core of a solve-like operation: problem + model text (in
/// the at/parser.hpp format) + optional bound / explicit engine.
/// `has_bound` distinguishes an absent bound from an explicit 0 so
/// encodings round-trip byte-stably.
struct SolveSpec {
  engine::Problem problem = engine::Problem::Cdpf;
  double bound = 0.0;
  bool has_bound = false;
  std::string engine;  ///< explicit engine name; "" = planner's choice
  std::string model;   ///< textual model (at/parser.hpp format)
};

/// One-shot solve through the service (cache + coalescing).
struct SolveRequest {
  SolveSpec spec;
};

/// Several independent solves fanned out over `threads` workers; item
/// results come back index-aligned inside one response.
struct BatchRequest {
  std::vector<SolveSpec> items;
  std::size_t threads = 0;  ///< 0 = min(hardware, items)
};

/// Opens an incremental edit session (service/session.hpp).
struct SessionOpenRequest {
  SolveSpec spec;
};

/// The closed set of session edit operations.
enum class EditOp { SetCost, SetProb, SetDamage, ToggleDefense, ReplaceSubtree };

const char* to_string(EditOp op);
std::optional<EditOp> parse_edit_op(const std::string& name);

struct SessionEditRequest {
  std::uint64_t session = 0;
  EditOp op = EditOp::SetCost;
  std::string target;   ///< BAS / node name the edit applies to
  double value = 0.0;   ///< SetCost/SetProb/SetDamage operand
  std::string model;    ///< ReplaceSubtree's replacement model text
};

struct SessionResolveRequest {
  std::uint64_t session = 0;
};

struct SessionCloseRequest {
  std::uint64_t session = 0;
};

/// 1D/2D parameter sweep (analysis/sweep.hpp).  Axes are carried as
/// their textual specs (`<attr>:<node>:<lo>:<hi>:<steps>` or
/// `defense:<bas>`) and parsed at dispatch, so requests round-trip
/// losslessly through every codec.
struct AnalyzeSweepRequest {
  engine::Problem problem = engine::Problem::Cdpf;
  std::vector<std::string> axes;
  double bound = 0.0;
  bool has_bound = false;
  std::string engine;
  std::string model;
};

/// Leaf-parameter sensitivity ranking (analysis/sensitivity.hpp);
/// front problems only.
struct AnalyzeSensitivityRequest {
  engine::Problem problem = engine::Problem::Cdpf;
  double step = 0.05;  ///< relative finite-difference step
  bool has_step = false;
  std::string engine;
  std::string model;
};

/// Defense-portfolio optimization (analysis/portfolio.hpp); dgc/edgc
/// only.  Defenses are textual specs (`<name>:<cost>:<bas>[+<bas>...]`).
struct AnalyzePortfolioRequest {
  engine::Problem problem = engine::Problem::Dgc;
  std::vector<std::string> defenses;
  double budget = std::numeric_limits<double>::infinity();
  bool has_budget = false;
  double bound = 0.0;  ///< attacker budget; absent = unbounded
  bool has_bound = false;
  std::string engine;
  std::string model;
};

/// Serving counters: result cache, subtree cache, sessions, dispatcher.
struct StatsRequest {};

/// Full metrics-registry exposition (obs/metrics.hpp): every instrument
/// of the serving stack, rendered as canonical JSON and Prometheus-style
/// text in one response.
struct MetricsRequest {};

/// Orderly end of a connection; the transport answers with a structured
/// shutdown payload instead of going silent.
struct ShutdownRequest {};

/// Writes a snapshot of the serving caches to \c path (src/persist/):
/// versioned, checksummed, atomically renamed into place.  Pairs with
/// SnapshotLoadRequest for warm restarts.
struct SnapshotSaveRequest {
  std::string path;
};

/// Loads a snapshot from \c path into the running caches through their
/// normal insert paths (budgets enforced, LRU order preserved).  A file
/// that is missing, truncated, corrupt, or written by an incompatible
/// format fails with ErrorCode::PersistError and leaves the caches
/// untouched.
struct SnapshotLoadRequest {
  std::string path;
};

using Operation =
    std::variant<SolveRequest, BatchRequest, SessionOpenRequest,
                 SessionEditRequest, SessionResolveRequest,
                 SessionCloseRequest, AnalyzeSweepRequest,
                 AnalyzeSensitivityRequest, AnalyzePortfolioRequest,
                 StatsRequest, MetricsRequest, ShutdownRequest,
                 SnapshotSaveRequest, SnapshotLoadRequest>;

/// Stable wire name of an operation ("solve", "batch", "open", ...).
const char* op_name(const Operation& op);

/// Parses a wire problem name (as printed by engine::to_string):
/// cdpf | dgc | cgd | cedpf | edgc | cged.
std::optional<engine::Problem> parse_problem(const std::string& name);

struct Request {
  /// Client-supplied request id, echoed verbatim on the response so
  /// pipelined transports can match out-of-order completions.  Empty is
  /// legal (the line protocol never sets one).
  std::string id;
  Operation op;
  /// Opt-in per-request tracing (`"trace": true` on the JSON envelope):
  /// the dispatcher activates a span context for this request and echoes
  /// the recorded phase spans and hot-path facts as Response::trace.
  /// Tracing never changes solve results; when false (the default) no
  /// trace state exists and responses are byte-identical to an
  /// untraced dispatcher's.
  bool trace = false;
};

// ---------------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------------

/// One Pareto point, witness pre-rendered against the request's model
/// (codecs never need the tree).
struct FrontPointPayload {
  double cost = 0.0;
  double damage = 0.0;
  std::string attack;  ///< attack_to_string() rendering, e.g. "{a, b}"
};

/// Result of a solve / session resolve.
struct SolvePayload {
  engine::Problem problem = engine::Problem::Cdpf;
  std::string backend;  ///< engine that produced the result
  std::string cache;    ///< "hit" | "miss" | "coalesced"
  service::CanonHash hash = 0;  ///< canonical model hash
  bool is_front = false;
  std::vector<FrontPointPayload> points;  ///< front problems
  bool feasible = false;                  ///< single-objective problems
  double cost = 0.0;
  double damage = 0.0;
  std::string attack;
};

/// Index-aligned batch results; items fail independently.
struct BatchPayload {
  struct Item {
    ErrorCode code = ErrorCode::Ok;
    std::string error;
    SolvePayload solve;  ///< valid when code == Ok
  };
  std::vector<Item> items;
};

struct SessionOpenedPayload {
  std::uint64_t session = 0;
};

struct EditAppliedPayload {};

struct SessionClosedPayload {};

/// An analysis table, verbatim in the library's byte-stable rendering.
struct AnalysisPayload {
  std::string kind;   ///< "sweep" | "sensitivity" | "portfolio"
  std::string table;  ///< analysis::to_table() output
};

/// Dispatcher-level operation counters — the "one source of truth" the
/// stats drift fix routes every protocol path through.
struct DispatchCounters {
  std::uint64_t requests = 0;   ///< total operations dispatched
  std::uint64_t solves = 0;     ///< solve ops + batch items + resolves
  std::uint64_t batches = 0;
  std::uint64_t session_opens = 0;
  std::uint64_t session_edits = 0;
  std::uint64_t session_resolves = 0;
  std::uint64_t session_closes = 0;
  std::uint64_t analyses = 0;   ///< sweep + sensitivity + portfolio runs
  std::uint64_t errors = 0;     ///< responses with code != Ok
};

/// Registry-histogram digest of dispatch latency, carried on the stats
/// payload so `stats` alone answers "how slow are we" without a full
/// metrics scrape.  Percentiles are the histogram's deterministic
/// bucket-edge values (obs::Histogram::percentile).
struct LatencySummary {
  std::uint64_t count = 0;       ///< requests recorded
  std::uint64_t sum_micros = 0;  ///< total recorded wall micros
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Snapshot save/load counters (src/persist/), carried on the stats
/// payload so warm-restart health is visible without a metrics scrape.
struct PersistCounters {
  std::uint64_t saves = 0;           ///< successful snapshot saves
  std::uint64_t loads = 0;           ///< successful snapshot loads
  std::uint64_t save_errors = 0;     ///< failed saves (io/encode)
  std::uint64_t load_errors = 0;     ///< failed loads (typed LoadStatus)
  std::uint64_t snapshot_bytes = 0;  ///< size of the last image written/read
};

struct StatsPayload {
  service::ResultCache::Stats cache;
  service::SubtreeCache::Stats subtree;
  std::size_t sessions = 0;
  DispatchCounters api;
  LatencySummary latency;  ///< atcd_api_request_micros digest
  PersistCounters persist;
};

/// The `metrics` op's result: the registry pre-rendered in both
/// canonical forms (obs::Registry::to_json / to_prometheus), so every
/// transport ships identical bytes.
struct MetricsPayload {
  std::string json;  ///< canonical JSON object
  std::string text;  ///< Prometheus-style text exposition
};

struct ShutdownPayload {
  /// Solve/resolve/analyze requests the connection handled; filled in
  /// by the serving loop (the dispatcher has no per-connection view).
  std::uint64_t handled = 0;
};

/// Result of a snapshot save or load.
struct SnapshotPayload {
  std::string action;  ///< "save" | "load"
  std::string path;    ///< the file the snapshot was written to / read from
  std::uint64_t result_entries = 0;   ///< ResultCache entries in the image
  std::uint64_t subtree_entries = 0;  ///< SubtreeCache entries in the image
  std::uint64_t file_bytes = 0;       ///< encoded image size
};

using Payload =
    std::variant<std::monostate, SolvePayload, BatchPayload,
                 SessionOpenedPayload, EditAppliedPayload,
                 SessionClosedPayload, AnalysisPayload, StatsPayload,
                 MetricsPayload, ShutdownPayload, SnapshotPayload>;

/// One recorded phase span (obs::Trace::Span, codec-friendly form).
/// Spans are listed in open (pre-)order; depth reconstructs the nesting.
struct TraceSpanPayload {
  std::string name;
  std::uint64_t depth = 0;
  std::uint64_t start_us = 0;  ///< offset from dispatch start
  std::uint64_t dur_us = 0;
};

/// The trace block echoed on a traced response: phase spans plus named
/// hot-path tallies (memo/cache hits, nodes swept, max front width).
struct TracePayload {
  std::vector<TraceSpanPayload> spans;
  std::vector<std::pair<std::string, std::uint64_t>> facts;
};

struct Response {
  std::string id;  ///< echoed Request::id
  ErrorCode code = ErrorCode::Ok;
  std::string error;    ///< human-readable message when code != Ok
  double micros = 0.0;  ///< wall time inside dispatch()
  Payload payload;      ///< monostate when code != Ok
  /// Present exactly when the request set Request::trace; emitted as a
  /// structured `trace` object by the JSON codec.
  std::optional<TracePayload> trace;
};

/// Convenience: an error response (payload stays monostate).
Response error_response(std::string id, ErrorCode code, std::string message);

/// The per-connection `handled` accounting shared by the line and JSON
/// serving loops (historical semantics of the line protocol): solves
/// count once dispatched — even when the solver fails — batch requests
/// count one per item, resolves count unless the session was unknown,
/// analyses count only when they ran; everything else counts zero.
std::size_t handled_increment(const Request& request,
                              const Response& response);

}  // namespace atcd::api
