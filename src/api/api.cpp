#include "api/api.hpp"

namespace atcd::api {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::Ok: return "ok";
    case ErrorCode::MalformedRequest: return "malformed_request";
    case ErrorCode::UnsupportedVersion: return "unsupported_version";
    case ErrorCode::UnknownOperation: return "unknown_operation";
    case ErrorCode::InvalidArgument: return "invalid_argument";
    case ErrorCode::ParseError: return "parse_error";
    case ErrorCode::ModelError: return "model_error";
    case ErrorCode::NoSuchSession: return "no_such_session";
    case ErrorCode::Capacity: return "capacity";
    case ErrorCode::SolverFailure: return "solver_failure";
    case ErrorCode::Internal: return "internal";
    case ErrorCode::PersistError: return "persist_error";
  }
  return "internal";
}

std::optional<ErrorCode> parse_error_code(const std::string& name) {
  for (ErrorCode c :
       {ErrorCode::Ok, ErrorCode::MalformedRequest,
        ErrorCode::UnsupportedVersion, ErrorCode::UnknownOperation,
        ErrorCode::InvalidArgument, ErrorCode::ParseError,
        ErrorCode::ModelError, ErrorCode::NoSuchSession, ErrorCode::Capacity,
        ErrorCode::SolverFailure, ErrorCode::Internal,
        ErrorCode::PersistError})
    if (name == to_string(c)) return c;
  return std::nullopt;
}

int exit_code(ErrorCode code) {
  switch (code) {
    case ErrorCode::Ok:
      return 0;
    case ErrorCode::MalformedRequest:
    case ErrorCode::UnsupportedVersion:
    case ErrorCode::UnknownOperation:
    case ErrorCode::InvalidArgument:
    case ErrorCode::NoSuchSession:
      return 2;
    case ErrorCode::ParseError:
    case ErrorCode::ModelError:
      return 3;
    case ErrorCode::Capacity:
    case ErrorCode::SolverFailure:
    case ErrorCode::Internal:
    case ErrorCode::PersistError:
      return 4;
  }
  return 4;
}

const char* to_string(EditOp op) {
  switch (op) {
    case EditOp::SetCost: return "set-cost";
    case EditOp::SetProb: return "set-prob";
    case EditOp::SetDamage: return "set-damage";
    case EditOp::ToggleDefense: return "toggle-defense";
    case EditOp::ReplaceSubtree: return "replace-subtree";
  }
  return "set-cost";
}

std::optional<EditOp> parse_edit_op(const std::string& name) {
  for (EditOp op : {EditOp::SetCost, EditOp::SetProb, EditOp::SetDamage,
                    EditOp::ToggleDefense, EditOp::ReplaceSubtree})
    if (name == to_string(op)) return op;
  return std::nullopt;
}

namespace {

struct OpNameVisitor {
  const char* operator()(const SolveRequest&) const { return "solve"; }
  const char* operator()(const BatchRequest&) const { return "batch"; }
  const char* operator()(const SessionOpenRequest&) const { return "open"; }
  const char* operator()(const SessionEditRequest&) const { return "edit"; }
  const char* operator()(const SessionResolveRequest&) const {
    return "resolve";
  }
  const char* operator()(const SessionCloseRequest&) const { return "close"; }
  const char* operator()(const AnalyzeSweepRequest&) const { return "sweep"; }
  const char* operator()(const AnalyzeSensitivityRequest&) const {
    return "sensitivity";
  }
  const char* operator()(const AnalyzePortfolioRequest&) const {
    return "portfolio";
  }
  const char* operator()(const StatsRequest&) const { return "stats"; }
  const char* operator()(const MetricsRequest&) const { return "metrics"; }
  const char* operator()(const ShutdownRequest&) const { return "quit"; }
  const char* operator()(const SnapshotSaveRequest&) const {
    return "snapshot-save";
  }
  const char* operator()(const SnapshotLoadRequest&) const {
    return "snapshot-load";
  }
};

}  // namespace

const char* op_name(const Operation& op) {
  return std::visit(OpNameVisitor{}, op);
}

std::optional<engine::Problem> parse_problem(const std::string& name) {
  using engine::Problem;
  for (Problem p : {Problem::Cdpf, Problem::Dgc, Problem::Cgd, Problem::Cedpf,
                    Problem::Edgc, Problem::Cged})
    if (name == engine::to_string(p)) return p;
  return std::nullopt;
}

std::size_t handled_increment(const Request& request,
                              const Response& response) {
  if (std::holds_alternative<SolveRequest>(request.op)) return 1;
  if (const auto* b = std::get_if<BatchRequest>(&request.op))
    return b->items.size();
  if (std::holds_alternative<SessionResolveRequest>(request.op))
    return response.code != ErrorCode::NoSuchSession ? 1 : 0;
  if (std::holds_alternative<AnalyzeSweepRequest>(request.op) ||
      std::holds_alternative<AnalyzeSensitivityRequest>(request.op) ||
      std::holds_alternative<AnalyzePortfolioRequest>(request.op))
    return response.code == ErrorCode::Ok ? 1 : 0;
  return 0;
}

Response error_response(std::string id, ErrorCode code, std::string message) {
  Response r;
  r.id = std::move(id);
  r.code = code;
  r.error = std::move(message);
  return r;
}

}  // namespace atcd::api
