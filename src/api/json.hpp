#pragma once
/// \file json.hpp
/// The v1 JSON wire codec of the typed API (api/api.hpp).
///
/// Hand-rolled on purpose: the repo takes no dependencies, and the
/// envelope is small enough that a strict, minimal parser beats a
/// vendored library.  One request or response per line of text:
///
///   {"v":1,"id":"7","op":"solve","problem":"cdpf","model":"bas a ..."}
///   {"v":1,"id":"7","code":"ok","kind":"front","engine":"bottom-up",...}
///
/// Encoding is canonical — fixed member order, absent optional fields
/// omitted, analysis::format_num for doubles — so
/// encode(decode(encode(x))) == encode(x) byte-for-byte; the nightly CI
/// round-trip property pins this over random requests.  Decoding is
/// strict: unknown members, wrong types, a missing/foreign "v", or
/// trailing bytes produce a typed ErrorCode instead of a guess, and the
/// recursion depth is capped so garbage can never blow the stack.
///
/// The generic json::Value layer is exposed for tests and for the stats
/// payload's nested counter objects.

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/api.hpp"

namespace atcd::api::json {

/// A parsed JSON document.  Objects keep member order (encoding is
/// order-sensitive); numbers are doubles (the wire format has no other
/// kind — session ids stay well under 2^53).
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> items;                              ///< Array
  std::vector<std::pair<std::string, Value>> members;    ///< Object

  const Value* find(const std::string& key) const;
};

/// Strict parse of one JSON document (no trailing bytes).  Returns
/// false and sets \p error on malformed input.
bool parse(const std::string& text, Value* out, std::string* error);

/// Compact canonical rendering (no whitespace, members in stored order,
/// doubles via analysis::format_num, minimal string escapes).
std::string dump(const Value& value);

/// The canonical number rendering dump() uses (format_num; non-finite
/// values become "null" so they surface as typed decode errors instead
/// of silently changing meaning on the wire).
std::string dump_number(double value);

/// The canonical string rendering dump() uses (quotes + escapes).
std::string dump_string(const std::string& value);

}  // namespace atcd::api::json

namespace atcd::api {

/// Hard upper bound on the byte length decode_request accepts.  Serving
/// loops enforce their own (smaller, configurable) line caps while the
/// bytes stream in; this constant is the decoder's last line of defense
/// for callers that hand it an already-materialized string.  Oversized
/// input yields a typed ErrorCode::Capacity, never an attempt to parse.
inline constexpr std::size_t kMaxDecodeBytes = 8u << 20;  // 8 MiB

/// Outcome of decoding a request or response line.
template <typename T>
struct Decoded {
  ErrorCode code = ErrorCode::Ok;
  std::string error;  ///< set when code != Ok
  T value;            ///< valid when code == Ok; on a payload-level
                      ///< failure value.id still carries the envelope id
                      ///< when one was readable, so the error response
                      ///< can be matched by the client
};

/// Canonical one-line JSON encoding of a request.
std::string encode_request(const Request& request);

/// Decodes one request line.  Envelope failures (bad JSON, missing
/// "v"/"op") yield MalformedRequest/UnsupportedVersion/UnknownOperation;
/// payload failures yield InvalidArgument with the offending field
/// named.
Decoded<Request> decode_request(const std::string& text);

/// Canonical one-line JSON encoding of a response.  `with_micros`
/// appends the wall-time member; the server omits it by default so
/// responses are byte-identical across runs and thread counts.
std::string encode_response(const Response& response, bool with_micros);

/// Decodes one response line (used by tests and programmatic clients).
Decoded<Response> decode_response(const std::string& text);

}  // namespace atcd::api
