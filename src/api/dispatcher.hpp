#pragma once
/// \file dispatcher.hpp
/// api::Dispatcher — the single execution facade behind every transport.
///
/// The dispatcher owns (or borrows) the SolveService, the
/// SessionManager, and the analysis wiring, and executes exactly the
/// typed operations of api/api.hpp.  The legacy line protocol
/// (api/line.hpp via service/protocol.cpp), the v1 JSON transport
/// (api/json.hpp + api/server.hpp), and the CLI all transcode into
/// api::Request and call dispatch(), so an operation behaves
/// identically no matter how it arrived — same solver results, same
/// error taxonomy, same counters.
///
/// dispatch() is thread-safe and never throws: every failure comes back
/// as a typed ErrorCode response.  Exceptions are classified
/// (ParseError/ModelError/CapacityError/SolverError...) instead of
/// stringified into free-form ok=false messages.
///
/// Stats: the dispatcher is the one source of truth.  Its per-operation
/// counters cover every path — including the analyses, whose derived
/// solves also run against the service's result cache here (the old
/// protocol bypassed it, so `stats` drifted from the work actually
/// done).

#include <atomic>
#include <memory>

#include "api/api.hpp"
#include "service/service.hpp"
#include "service/session.hpp"

namespace atcd::api {

class Dispatcher {
 public:
  struct Options {
    service::SolveService::Options service;
  };

  /// Owning constructors: the dispatcher builds its own service and
  /// session manager from the options.
  Dispatcher();
  explicit Dispatcher(Options options);

  /// Borrowing constructor: wraps an existing service (and optionally a
  /// shared session manager — null gives the dispatcher a private one).
  /// Used by the legacy serve() signature so existing call sites keep
  /// their SolveService ownership; the op counters live per dispatcher.
  explicit Dispatcher(service::SolveService& service,
                      service::SessionManager* sessions = nullptr);

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Executes one request.  Thread-safe; never throws.  The response
  /// echoes the request id and carries wall micros spent inside.
  Response dispatch(const Request& request);

  /// Unified serving counters (cache + subtree + sessions + dispatcher
  /// ops) — what the `stats` operation reports.
  StatsPayload stats() const;

  DispatchCounters counters() const;

  service::SolveService& service() { return *service_; }
  service::SessionManager& sessions() { return *sessions_; }

 private:
  friend struct OperationHandler;

  Response dispatch_op(const Request& request);
  BatchPayload::Item solve_item(const SolveSpec& spec);

  std::unique_ptr<service::SolveService> owned_service_;
  std::unique_ptr<service::SessionManager> owned_sessions_;
  service::SolveService* service_ = nullptr;
  service::SessionManager* sessions_ = nullptr;

  std::atomic<std::uint64_t> requests_{0}, solves_{0}, batches_{0},
      session_opens_{0}, session_edits_{0}, session_resolves_{0},
      session_closes_{0}, analyses_{0}, errors_{0};
};

}  // namespace atcd::api
