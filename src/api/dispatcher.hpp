#pragma once
/// \file dispatcher.hpp
/// api::Dispatcher — the single execution facade behind every transport.
///
/// The dispatcher owns (or borrows) the SolveService, the
/// SessionManager, and the analysis wiring, and executes exactly the
/// typed operations of api/api.hpp.  The legacy line protocol
/// (api/line.hpp via service/protocol.cpp), the v1 JSON transport
/// (api/json.hpp + api/server.hpp), and the CLI all transcode into
/// api::Request and call dispatch(), so an operation behaves
/// identically no matter how it arrived — same solver results, same
/// error taxonomy, same counters.
///
/// dispatch() is thread-safe and never throws: every failure comes back
/// as a typed ErrorCode response.  Exceptions are classified
/// (ParseError/ModelError/CapacityError/SolverError...) instead of
/// stringified into free-form ok=false messages.
///
/// Stats: the dispatcher is the one source of truth.  Its per-operation
/// counters cover every path — including the analyses, whose derived
/// solves also run against the service's result cache here (the old
/// protocol bypassed it, so `stats` drifted from the work actually
/// done).
///
/// Observability: every dispatcher-assembled stack shares one
/// obs::Registry (owned here unless Options::metrics injects one, or
/// adopted from the service in the borrowing constructor).  The op
/// counters and per-op latency histograms are registry instruments,
/// resolved once at construction so the dispatch hot path never takes
/// the registry lock; the `metrics` operation renders the registry, and
/// `"trace": true` requests get a span context for the duration of the
/// dispatch (see obs/trace.hpp).

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <variant>

#include "api/api.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/service.hpp"
#include "service/session.hpp"

namespace atcd::api {

class Dispatcher {
 public:
  struct Options {
    service::SolveService::Options service;
    /// Shared instrument registry; null = the dispatcher owns one and
    /// threads it through the service and both caches.
    obs::Registry* metrics = nullptr;
    /// When > 0, any request slower than this logs one structured JSON
    /// object per line on stderr
    /// ({"event":"slow_request","op":...,"id":...,"code":...,
    /// "micros":...}).
    double slow_request_micros = 0.0;
    /// When non-empty, every dispatch runs with an internal span
    /// context and slow requests (>= slow_request_micros; all requests
    /// when that is 0) are exported to this directory as Chrome
    /// trace-event JSON files (atcd_trace_<seq>_<op>.json), loadable in
    /// chrome://tracing / Perfetto.  The directory must exist.  The
    /// response wire bytes are unchanged: Response::trace is still only
    /// attached for `"trace": true` requests.
    std::string trace_dir;
    /// Cap on exported trace files per dispatcher lifetime (sampling
    /// guard so a slow deployment cannot fill a disk).
    std::size_t trace_max_files = 256;
    /// Bench baseline knob: false disables only dispatch()-level
    /// recording (request/error counters, latency histograms, the slow
    /// check), isolating exactly the hot-path cost the api_dispatch
    /// bench gates at < 2%.  Leave true everywhere else.
    bool record_metrics = true;
  };

  /// Owning constructors: the dispatcher builds its own service and
  /// session manager from the options.
  Dispatcher();
  explicit Dispatcher(Options options);

  /// Borrowing constructor: wraps an existing service (and optionally a
  /// shared session manager — null gives the dispatcher a private one).
  /// Used by the legacy serve() signature so existing call sites keep
  /// their SolveService ownership; the op counters live per dispatcher.
  explicit Dispatcher(service::SolveService& service,
                      service::SessionManager* sessions = nullptr);

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Executes one request.  Thread-safe; never throws.  The response
  /// echoes the request id and carries wall micros spent inside.
  Response dispatch(const Request& request);

  /// Unified serving counters (cache + subtree + sessions + dispatcher
  /// ops) — what the `stats` operation reports.
  StatsPayload stats() const;

  DispatchCounters counters() const;

  /// Renders the registry (refreshing the derived gauges first) — the
  /// body of the `metrics` operation and of `--metrics-dump`.
  MetricsPayload metrics_payload() const;

  service::SolveService& service() { return *service_; }
  service::SessionManager& sessions() { return *sessions_; }
  /// The stack's shared instrument registry; never null.
  obs::Registry& metrics() const { return *metrics_; }

 private:
  friend struct OperationHandler;

  Response dispatch_op(const Request& request);
  BatchPayload::Item solve_item(const SolveSpec& spec);
  /// Writes one Chrome trace-event file for a sampled slow request
  /// (trace_dir mode); silently stops at trace_max_files.
  void export_trace(const Request& request, const Response& response,
                    const obs::Trace& trace);
  /// Resolves every instrument pointer out of metrics_ (construction
  /// only; keeps dispatch() off the registry mutex).
  void init_instruments();
  /// Re-derives the exposition-time gauges (cache residency, open
  /// sessions) from their sources of truth.
  void refresh_gauges() const;

  /// Declared before owned_service_: the owning constructor points the
  /// service options at this registry before building the service.
  std::unique_ptr<obs::Registry> owned_metrics_;
  obs::Registry* metrics_ = nullptr;
  std::unique_ptr<service::SolveService> owned_service_;
  std::unique_ptr<service::SessionManager> owned_sessions_;
  service::SolveService* service_ = nullptr;
  service::SessionManager* sessions_ = nullptr;

  double slow_request_micros_ = 0.0;
  bool record_ = true;
  std::string trace_dir_;
  std::size_t trace_max_files_ = 256;
  std::atomic<std::uint64_t> trace_seq_{0};

  // Registry instruments, resolved once by init_instruments().
  obs::Counter* requests_ = nullptr;
  obs::Counter* solves_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Counter* session_opens_ = nullptr;
  obs::Counter* session_edits_ = nullptr;
  obs::Counter* session_resolves_ = nullptr;
  obs::Counter* session_closes_ = nullptr;
  obs::Counter* analyses_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Counter* persist_saves_ = nullptr;
  obs::Counter* persist_loads_ = nullptr;
  obs::Counter* persist_save_errors_ = nullptr;
  obs::Counter* persist_load_errors_ = nullptr;
  /// Last snapshot image touched (saved or loaded) by this dispatcher:
  /// size in bytes and wall-clock seconds, for the atcd_persist_*
  /// gauges.  Kept out of the snapshot image itself so save → load →
  /// save stays byte-identical.
  std::atomic<std::uint64_t> last_snapshot_bytes_{0};
  std::atomic<std::uint64_t> last_snapshot_unix_{0};
  obs::Histogram* request_micros_ = nullptr;  ///< all ops
  /// Per-op latency, indexed by the Operation variant alternative.
  std::array<obs::Histogram*, std::variant_size_v<Operation>> op_micros_{};
};

}  // namespace atcd::api
