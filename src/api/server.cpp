#include "api/server.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <istream>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "api/json.hpp"
#include "api/line.hpp"

namespace atcd::api {

std::size_t serve_json(std::istream& in, std::ostream& out,
                       Dispatcher& dispatcher,
                       const JsonServeOptions& options) {
  std::mutex out_mu;
  std::atomic<std::size_t> handled{0};

  const auto emit = [&](const Response& resp) {
    std::lock_guard<std::mutex> lock(out_mu);
    out << encode_response(resp, options.timing) << '\n';
    out.flush();
  };

  const auto process = [&](const Request& req) {
    const Response resp = dispatcher.dispatch(req);
    handled.fetch_add(handled_increment(req, resp));
    emit(resp);
  };

  // Pipelining: the reader enqueues, workers dispatch and complete out
  // of order.  Responses interleave by completion; clients match them
  // by id.
  const std::size_t workers = options.threads > 1 ? options.threads : 0;
  std::deque<Request> queue;
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  bool closed = false;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    pool.emplace_back([&] {
      while (true) {
        std::unique_lock<std::mutex> lock(queue_mu);
        queue_cv.wait(lock, [&] { return closed || !queue.empty(); });
        if (queue.empty()) return;  // closed and drained
        Request req = std::move(queue.front());
        queue.pop_front();
        lock.unlock();
        process(req);
      }
    });

  std::string quit_id;
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string line = detail::trim(raw);
    if (line.empty() || line[0] == '#') continue;
    Decoded<Request> dec = decode_request(line);
    if (dec.code != ErrorCode::Ok) {
      // Malformed input never crashes and never goes silent: a typed
      // error response, carrying the envelope id when one was readable.
      emit(error_response(dec.value.id, dec.code, dec.error));
      continue;
    }
    if (std::holds_alternative<ShutdownRequest>(dec.value.op)) {
      quit_id = dec.value.id;
      break;
    }
    if (workers) {
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        queue.push_back(std::move(dec.value));
      }
      queue_cv.notify_one();
    } else {
      process(dec.value);
    }
  }

  if (workers) {
    {
      std::lock_guard<std::mutex> lock(queue_mu);
      closed = true;
    }
    queue_cv.notify_all();
    for (auto& th : pool) th.join();
  }

  // Structured shutdown — on quit *and* on EOF — after every in-flight
  // request has drained, so the last line a client reads is always the
  // shutdown response.
  Request quit;
  quit.id = quit_id;
  quit.op = ShutdownRequest{};
  Response resp = dispatcher.dispatch(quit);
  if (auto* p = std::get_if<ShutdownPayload>(&resp.payload))
    p->handled = handled.load();
  emit(resp);
  return handled.load();
}

}  // namespace atcd::api
