#include "api/server.hpp"

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <istream>
#include <limits>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "api/json.hpp"
#include "api/line.hpp"
#include "obs/metrics.hpp"

namespace atcd::api {

// ---------------------------------------------------------------------------
// IoStreamTransport.
// ---------------------------------------------------------------------------

LineTransport::ReadStatus IoStreamTransport::read_line(std::string& line,
                                                       std::size_t max_bytes) {
  line.clear();
  // istream::getline stores at most size-1 chars; sizing the buffer at
  // max_bytes+2 accepts lines of exactly max_bytes and flags anything
  // longer without ever holding more than the cap.
  buf_.resize(max_bytes + 2);
  in_.getline(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  if (in_.bad()) return ReadStatus::Eof;
  if (in_.fail()) {
    if (in_.gcount() == 0) return ReadStatus::Eof;  // true EOF / dead stream
    // Overlong line: the buffer filled before a newline.  Drop the
    // remainder without buffering it (ignore() discards as it reads).
    in_.clear(in_.rdstate() & ~std::ios::failbit);
    in_.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    return ReadStatus::TooLong;
  }
  const std::size_t len = std::strlen(buf_.data());
  if (len > max_bytes) return ReadStatus::TooLong;
  line.assign(buf_.data(), len);
  return ReadStatus::Line;
}

bool IoStreamTransport::write_line(const std::string& line) {
  out_ << line << '\n';
  out_.flush();
  return static_cast<bool>(out_);
}

// ---------------------------------------------------------------------------
// The serving core.
// ---------------------------------------------------------------------------

std::size_t serve_lines(LineTransport& t, Dispatcher& dispatcher,
                        const JsonServeOptions& options) {
  std::mutex out_mu;
  std::atomic<std::size_t> handled{0};
  std::atomic<bool> sink_failed{false};
  obs::Counter& write_errors =
      dispatcher.metrics().counter("atcd_net_write_errors_total");

  const std::size_t workers = options.threads > 1 ? options.threads : 0;
  const std::size_t depth =
      options.max_queue ? options.max_queue
                        : 2 * (workers ? workers : std::size_t{1});

  std::deque<Request> queue;
  std::mutex queue_mu;
  std::condition_variable queue_cv;  // workers wait for work …
  std::condition_variable space_cv;  // … the reader waits for space
  bool closed = false;

  const auto emit = [&](const Response& resp) {
    std::lock_guard<std::mutex> lock(out_mu);
    if (sink_failed.load(std::memory_order_relaxed)) return;
    if (!t.write_line(encode_response(resp, options.timing))) {
      // A dead sink (closed socket, broken pipe) ends the connection:
      // stop the loop instead of dispatching and writing into the void.
      sink_failed.store(true, std::memory_order_relaxed);
      write_errors.add();
      queue_cv.notify_all();
      space_cv.notify_all();
    }
  };

  const auto process = [&](const Request& req) {
    const Response resp = dispatcher.dispatch(req);
    handled.fetch_add(handled_increment(req, resp));
    emit(resp);
  };

  // Pipelining: the reader enqueues, workers dispatch and complete out
  // of order.  Responses interleave by completion; clients match them
  // by id.  The queue is bounded: at `depth` pending requests the
  // reader blocks until a worker frees a slot, so a fast client cannot
  // balloon memory (on a socket the stall becomes TCP backpressure).
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    pool.emplace_back([&] {
      while (true) {
        std::unique_lock<std::mutex> lock(queue_mu);
        queue_cv.wait(lock, [&] { return closed || !queue.empty(); });
        if (queue.empty()) return;  // closed and drained
        Request req = std::move(queue.front());
        queue.pop_front();
        lock.unlock();
        space_cv.notify_one();
        // Once the sink is gone there is nobody to answer: drain the
        // queue without dispatching.
        if (!sink_failed.load(std::memory_order_relaxed)) process(req);
      }
    });

  std::string quit_id;
  std::string raw;
  while (!sink_failed.load(std::memory_order_relaxed)) {
    const LineTransport::ReadStatus status =
        t.read_line(raw, options.max_line_bytes);
    if (status == LineTransport::ReadStatus::Eof) break;
    if (status == LineTransport::ReadStatus::TooLong) {
      // The line's bytes are already gone (discarded while streaming),
      // so no id is recoverable; the typed capacity error keeps the
      // connection alive and the refusal observable.
      emit(error_response(
          "", ErrorCode::Capacity,
          "input line exceeds " + std::to_string(options.max_line_bytes) +
              " bytes"));
      continue;
    }
    const std::string line = detail::trim(raw);
    if (line.empty() || line[0] == '#') continue;
    Decoded<Request> dec = decode_request(line);
    if (dec.code != ErrorCode::Ok) {
      // Malformed input never crashes and never goes silent: a typed
      // error response, carrying the envelope id when one was readable.
      emit(error_response(dec.value.id, dec.code, dec.error));
      continue;
    }
    if (std::holds_alternative<ShutdownRequest>(dec.value.op)) {
      quit_id = dec.value.id;
      break;
    }
    if (workers) {
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        space_cv.wait(lock, [&] {
          return queue.size() < depth ||
                 sink_failed.load(std::memory_order_relaxed);
        });
        if (sink_failed.load(std::memory_order_relaxed)) break;
        queue.push_back(std::move(dec.value));
      }
      queue_cv.notify_one();
    } else {
      process(dec.value);
    }
  }

  if (workers) {
    {
      std::lock_guard<std::mutex> lock(queue_mu);
      closed = true;
    }
    queue_cv.notify_all();
    for (auto& th : pool) th.join();
  }

  // Structured shutdown — on quit *and* on EOF — after every in-flight
  // request has drained, so the last line a client reads is always the
  // shutdown response.  A failed sink skips it: the connection is gone.
  if (!sink_failed.load(std::memory_order_relaxed)) {
    Request quit;
    quit.id = quit_id;
    quit.op = ShutdownRequest{};
    Response resp = dispatcher.dispatch(quit);
    if (auto* p = std::get_if<ShutdownPayload>(&resp.payload))
      p->handled = handled.load();
    emit(resp);
  }
  return handled.load();
}

std::size_t serve_json(std::istream& in, std::ostream& out,
                       Dispatcher& dispatcher,
                       const JsonServeOptions& options) {
  IoStreamTransport transport(in, out);
  return serve_lines(transport, dispatcher, options);
}

}  // namespace atcd::api
