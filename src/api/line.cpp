#include "api/line.hpp"

#include <cmath>
#include <cstdio>
#include <istream>
#include <sstream>
#include <vector>

namespace atcd::api {

namespace detail {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace detail

namespace {

using detail::trim;

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

/// Error messages travel on one line; fold any embedded newlines.
std::string one_line(std::string s) {
  for (auto pos = s.find('\n'); pos != std::string::npos;
       pos = s.find('\n', pos))
    s.replace(pos, 1, "; ");
  return s;
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string micros_str(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

bool parse_value(const std::string& tok, double* value) {
  std::size_t consumed = 0;
  try {
    *value = std::stod(tok, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  return consumed == tok.size() && std::isfinite(*value);
}

bool parse_session_id(const std::string& tok, std::uint64_t* id) {
  if (tok.empty()) return false;
  std::size_t consumed = 0;
  try {
    *id = std::stoull(tok, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  return consumed == tok.size();
}

/// Reads lines up to the `end` terminator into \p model_text.  Returns
/// false when the stream ends first.
bool read_model_block(std::istream& in, std::string* model_text) {
  std::string raw;
  while (std::getline(in, raw)) {
    // The terminator may carry a trailing comment ('#' starts a comment
    // everywhere in the protocol), so strip it before testing.
    std::string stripped = raw;
    if (const auto h = stripped.find('#'); h != std::string::npos)
      stripped.erase(h);
    if (trim(stripped) == "end") return true;
    *model_text += raw;
    *model_text += '\n';
  }
  return false;
}

LineRequest fail(ErrorCode code, std::string message) {
  LineRequest r;
  r.code = code;
  r.error = std::move(message);
  return r;
}

LineRequest unterminated() {
  return fail(ErrorCode::MalformedRequest,
              "unterminated model block (missing 'end' line)");
}

/// Parsed `solve`/`open` header; `error` set when malformed.
struct SolveHeader {
  std::string error;
  SolveSpec spec;
};

SolveHeader parse_solve_header(const std::vector<std::string>& tok) {
  SolveHeader h;
  if (tok.size() < 2) {
    h.error = tok[0] + " requires a problem name "
              "(cdpf|dgc|cgd|cedpf|edgc|cged)";
    return h;
  }
  const auto problem = parse_problem(tok[1]);
  if (!problem) {
    h.error = "unknown problem '" + tok[1] +
              "' (expected cdpf|dgc|cgd|cedpf|edgc|cged)";
    return h;
  }
  h.spec.problem = *problem;
  for (std::size_t i = 2; i < tok.size(); ++i) {
    if (tok[i].rfind("bound=", 0) == 0) {
      // Strict numeric parse shared with the edit values: full
      // consumption (no trailing junk) and finite.
      if (!parse_value(tok[i].substr(6), &h.spec.bound)) {
        h.error = "bad bound '" + tok[i] + "' (must be finite)";
        return h;
      }
      h.spec.has_bound = true;
    } else if (tok[i].rfind("engine=", 0) == 0) {
      h.spec.engine = tok[i].substr(7);
    } else {
      h.error = "unknown " + tok[0] + " argument '" + tok[i] +
                "' (expected bound=<num> or engine=<name>)";
      return h;
    }
  }
  return h;
}

/// Transcodes an `analyze` line (model block already consumed into
/// \p model_text).
LineRequest transcode_analyze(const std::vector<std::string>& tok,
                              std::string model_text) {
  if (tok.size() < 3)
    return fail(ErrorCode::InvalidArgument,
                "analyze takes: (sweep|sensitivity|portfolio) <problem> ...");
  const std::string& what = tok[1];
  if (what != "sweep" && what != "sensitivity" && what != "portfolio")
    return fail(ErrorCode::InvalidArgument,
                "unknown analysis '" + what +
                    "' (expected sweep, sensitivity, or portfolio)");
  const auto problem = parse_problem(tok[2]);
  if (!problem)
    return fail(ErrorCode::InvalidArgument,
                "unknown problem '" + tok[2] +
                    "' (expected cdpf|dgc|cgd|cedpf|edgc|cged)");

  std::vector<std::string> axes, defenses;
  std::string engine_name;
  double bound = 0.0, budget = 0.0, step = 0.0;
  bool has_bound = false, has_budget = false, has_step = false;
  for (std::size_t i = 3; i < tok.size(); ++i) {
    if (tok[i].rfind("axis=", 0) == 0) {
      axes.push_back(tok[i].substr(5));
    } else if (tok[i].rfind("defense=", 0) == 0) {
      defenses.push_back(tok[i].substr(8));
    } else if (tok[i].rfind("budget=", 0) == 0) {
      if (what != "portfolio")
        return fail(ErrorCode::InvalidArgument,
                    "budget= only applies to analyze portfolio");
      if (!parse_value(tok[i].substr(7), &budget) || budget < 0.0)
        return fail(ErrorCode::InvalidArgument,
                    "bad budget '" + tok[i] + "' (must be >= 0)");
      has_budget = true;
    } else if (tok[i].rfind("bound=", 0) == 0) {
      if (what == "sensitivity")
        return fail(ErrorCode::InvalidArgument,
                    "bound= does not apply to analyze sensitivity "
                    "(the front problems ignore it)");
      if (!parse_value(tok[i].substr(6), &bound))
        return fail(ErrorCode::InvalidArgument,
                    "bad bound '" + tok[i] + "' (must be finite)");
      has_bound = true;
    } else if (tok[i].rfind("step=", 0) == 0) {
      if (what != "sensitivity")
        return fail(ErrorCode::InvalidArgument,
                    "step= only applies to analyze sensitivity");
      if (!parse_value(tok[i].substr(5), &step) || step <= 0.0)
        return fail(ErrorCode::InvalidArgument,
                    "bad step '" + tok[i] + "' (must be > 0)");
      has_step = true;
    } else if (tok[i].rfind("engine=", 0) == 0) {
      engine_name = tok[i].substr(7);
    } else {
      return fail(ErrorCode::InvalidArgument,
                  "unknown analyze argument '" + tok[i] + "'");
    }
  }
  if (what != "sweep" && !axes.empty())
    return fail(ErrorCode::InvalidArgument,
                "axis= only applies to analyze sweep");
  if (what != "portfolio" && !defenses.empty())
    return fail(ErrorCode::InvalidArgument,
                "defense= only applies to analyze portfolio");

  LineRequest out;
  if (what == "sweep") {
    AnalyzeSweepRequest r;
    r.problem = *problem;
    r.axes = std::move(axes);
    r.bound = bound;
    r.has_bound = has_bound;
    r.engine = std::move(engine_name);
    r.model = std::move(model_text);
    out.request.op = std::move(r);
  } else if (what == "sensitivity") {
    AnalyzeSensitivityRequest r;
    r.problem = *problem;
    if (has_step) {
      r.step = step;
      r.has_step = true;
    }
    r.engine = std::move(engine_name);
    r.model = std::move(model_text);
    out.request.op = std::move(r);
  } else {
    AnalyzePortfolioRequest r;
    r.problem = *problem;
    r.defenses = std::move(defenses);
    if (has_budget) {
      r.budget = budget;
      r.has_budget = true;
    }
    r.bound = bound;
    r.has_bound = has_bound;
    r.engine = std::move(engine_name);
    r.model = std::move(model_text);
    out.request.op = std::move(r);
  }
  return out;
}

/// Transcodes an `edit` line (replace-subtree block already consumed
/// into \p subtree_text by the caller).
LineRequest transcode_edit(const std::vector<std::string>& tok,
                           std::string subtree_text) {
  std::uint64_t id = 0;
  if (tok.size() < 3 || !parse_session_id(tok[1], &id))
    return fail(ErrorCode::InvalidArgument,
                "edit takes: <session-id> <op> ...");
  const std::string& op = tok[2];
  SessionEditRequest r;
  r.session = id;
  if (op == "replace-subtree") {
    if (tok.size() != 4)
      return fail(ErrorCode::InvalidArgument,
                  "edit replace-subtree takes: <node>");
    r.op = EditOp::ReplaceSubtree;
    r.target = tok[3];
    r.model = std::move(subtree_text);
  } else if (op == "toggle-defense") {
    if (tok.size() != 4)
      return fail(ErrorCode::InvalidArgument,
                  "edit toggle-defense takes: <bas>");
    r.op = EditOp::ToggleDefense;
    r.target = tok[3];
  } else if (op == "set-cost" || op == "set-prob" || op == "set-damage") {
    if (tok.size() != 5)
      return fail(ErrorCode::InvalidArgument,
                  "edit " + op + " takes: <name> <value>");
    if (!parse_value(tok[4], &r.value))
      return fail(ErrorCode::InvalidArgument,
                  "edit " + op + ": bad value '" + tok[4] + "'");
    r.op = op == "set-cost" ? EditOp::SetCost
           : op == "set-prob" ? EditOp::SetProb
                              : EditOp::SetDamage;
    r.target = tok[3];
  } else {
    return fail(ErrorCode::InvalidArgument,
                "unknown edit op '" + op +
                    "' (expected set-cost, set-prob, set-damage, "
                    "toggle-defense, or replace-subtree)");
  }
  LineRequest out;
  out.request.op = std::move(r);
  return out;
}

}  // namespace

LineRequest read_line_request(const std::string& line, std::istream& in) {
  const std::vector<std::string> tok = split_ws(line);

  if (tok[0] == "quit" || tok[0] == "exit") {
    LineRequest out;
    out.request.op = ShutdownRequest{};
    return out;
  }

  if (tok[0] == "stats") {
    LineRequest out;
    out.request.op = StatsRequest{};
    out.stats_json = tok.size() >= 2 && tok[1] == "--json";
    return out;
  }

  if (tok[0] == "metrics") {
    LineRequest out;
    out.request.op = MetricsRequest{};
    out.metrics_json = tok.size() >= 2 && tok[1] == "--json";
    return out;
  }

  if (tok[0] == "analyze") {
    // Like solve/open, an analyze line is always followed by a model
    // block, consumed even when the header is bad (desync guard).
    std::string model_text;
    if (!read_model_block(in, &model_text)) return unterminated();
    return transcode_analyze(tok, std::move(model_text));
  }

  if (tok[0] == "solve" || tok[0] == "open") {
    // Header problems are collected, not reported yet: the client
    // sends a model block after every solve/open line, so the block
    // must be consumed either way or the stream desyncs (model lines
    // would be re-parsed as commands).
    SolveHeader header = parse_solve_header(tok);
    std::string model_text;
    const bool terminated = read_model_block(in, &model_text);
    if (!header.error.empty())
      return fail(ErrorCode::InvalidArgument, std::move(header.error));
    if (!terminated) return unterminated();
    header.spec.model = std::move(model_text);
    LineRequest out;
    if (tok[0] == "solve")
      out.request.op = SolveRequest{std::move(header.spec)};
    else
      out.request.op = SessionOpenRequest{std::move(header.spec)};
    return out;
  }

  if (tok[0] == "edit") {
    // A replace-subtree edit is followed by a model block, which must
    // be consumed even when the header or session id is bad — also
    // check the op's shifted position (a forgotten session id moves
    // it), or the block's model lines would be re-parsed as commands
    // and desync the stream.  Only the op positions are checked:
    // "replace-subtree" is a legal *node name*, so an operand match
    // (e.g. `edit 1 set-cost replace-subtree 3`) must not eat a block.
    const bool has_block =
        (tok.size() >= 2 && tok[1] == "replace-subtree") ||
        (tok.size() >= 3 && tok[2] == "replace-subtree");
    std::string subtree_text;
    if (has_block && !read_model_block(in, &subtree_text))
      return unterminated();
    return transcode_edit(tok, std::move(subtree_text));
  }

  if (tok[0] == "resolve" || tok[0] == "close") {
    std::uint64_t id = 0;
    if (tok.size() != 2 || !parse_session_id(tok[1], &id))
      return fail(ErrorCode::InvalidArgument,
                  tok[0] + " takes: <session-id>");
    LineRequest out;
    if (tok[0] == "resolve")
      out.request.op = SessionResolveRequest{id};
    else
      out.request.op = SessionCloseRequest{id};
    return out;
  }

  return fail(ErrorCode::UnknownOperation,
              "unknown command '" + tok[0] +
                  "' (expected solve, open, edit, resolve, close, "
                  "analyze, stats, metrics, or quit)");
}

namespace {

std::string error_block(const std::string& message) {
  return "ok=false\nerror=" + one_line(message) + "\ndone\n";
}

std::string format_solve_block(const SolvePayload& p, double micros) {
  std::ostringstream out;
  char hash[17];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(p.hash));
  out << "ok=true\n"
      << "engine=" << p.backend << '\n'
      << "cache=" << p.cache << '\n'
      << "hash=" << hash << '\n'
      << "micros=" << micros_str(micros) << '\n';
  if (p.is_front) {
    out << "kind=front\n"
        << "points=" << p.points.size() << '\n';
    for (std::size_t i = 0; i < p.points.size(); ++i)
      out << "point." << i << '=' << num(p.points[i].cost) << ' '
          << num(p.points[i].damage) << ' ' << p.points[i].attack << '\n';
  } else {
    out << "kind=attack\n"
        << "feasible=" << (p.feasible ? "true" : "false") << '\n';
    if (p.feasible)
      out << "cost=" << num(p.cost) << '\n'
          << "damage=" << num(p.damage) << '\n'
          << "attack=" << p.attack << '\n';
  }
  out << "done\n";
  return out.str();
}

/// Wraps an analysis table as a response block: the table rides along
/// verbatim, one row.<i>= line per table line, so clients get exactly
/// the byte-stable rendering the library produces.
std::string format_analysis_block(const AnalysisPayload& p, double micros) {
  std::ostringstream out;
  out << "ok=true\nkind=" << p.kind << "\nmicros=" << micros_str(micros)
      << '\n';
  std::size_t rows = 0, start = 0;
  std::ostringstream body;
  while (start < p.table.size()) {
    std::size_t nl = p.table.find('\n', start);
    if (nl == std::string::npos) nl = p.table.size();
    body << "row." << rows++ << '=' << p.table.substr(start, nl - start)
         << '\n';
    start = nl + 1;
  }
  out << "rows=" << rows << '\n' << body.str() << "done\n";
  return out.str();
}

template <typename Counters>
void append_cache_counters(std::ostringstream& out, const char* prefix,
                           const Counters& c) {
  out << prefix << "hits=" << c.hits << '\n'
      << prefix << "misses=" << c.misses << '\n'
      << prefix << "insertions=" << c.insertions << '\n'
      << prefix << "evictions=" << c.evictions << '\n'
      << prefix << "collisions=" << c.collisions << '\n'
      << prefix << "entries=" << c.entries << '\n'
      << prefix << "bytes=" << c.bytes << '\n';
}

std::string format_stats_block(const StatsPayload& s) {
  std::ostringstream out;
  out << "ok=true\n";
  append_cache_counters(out, "", s.cache);
  append_cache_counters(out, "subtree_", s.subtree);
  out << "sessions=" << s.sessions << '\n'
      << "api_requests=" << s.api.requests << '\n'
      << "api_solves=" << s.api.solves << '\n'
      << "api_batches=" << s.api.batches << '\n'
      << "api_session_opens=" << s.api.session_opens << '\n'
      << "api_session_edits=" << s.api.session_edits << '\n'
      << "api_session_resolves=" << s.api.session_resolves << '\n'
      << "api_session_closes=" << s.api.session_closes << '\n'
      << "api_analyses=" << s.api.analyses << '\n'
      << "api_errors=" << s.api.errors << '\n'
      // Latency digest rides after the historical counters so old
      // clients that scan for fixed keys keep working unchanged.
      << "latency_count=" << s.latency.count << '\n'
      << "latency_sum_micros=" << s.latency.sum_micros << '\n'
      << "latency_p50=" << num(s.latency.p50) << '\n'
      << "latency_p95=" << num(s.latency.p95) << '\n'
      << "latency_p99=" << num(s.latency.p99) << '\n'
      // Persist counters after latency, same append-only discipline.
      << "persist_saves=" << s.persist.saves << '\n'
      << "persist_loads=" << s.persist.loads << '\n'
      << "persist_save_errors=" << s.persist.save_errors << '\n'
      << "persist_load_errors=" << s.persist.load_errors << '\n'
      << "persist_snapshot_bytes=" << s.persist.snapshot_bytes << '\n'
      << "done\n";
  return out.str();
}

/// Prometheus text as numbered rows, mirroring the analysis blocks:
/// clients get the exposition byte for byte, one row.<i>= per line.
std::string format_metrics_block(const MetricsPayload& p) {
  std::ostringstream out;
  out << "ok=true\nkind=metrics\n";
  std::size_t rows = 0, start = 0;
  std::ostringstream body;
  while (start < p.text.size()) {
    std::size_t nl = p.text.find('\n', start);
    if (nl == std::string::npos) nl = p.text.size();
    body << "row." << rows++ << '=' << p.text.substr(start, nl - start)
         << '\n';
    start = nl + 1;
  }
  out << "rows=" << rows << '\n' << body.str() << "done\n";
  return out.str();
}

struct LineFormatter {
  double micros;

  std::string operator()(const std::monostate&) const {
    return "ok=true\ndone\n";
  }
  std::string operator()(const SolvePayload& p) const {
    return format_solve_block(p, micros);
  }
  std::string operator()(const BatchPayload& p) const {
    // Not reachable over the line protocol (it has no batch command);
    // render a minimal block so a programmatic caller still gets a
    // terminated response.
    std::ostringstream out;
    out << "ok=true\nkind=batch\nitems=" << p.items.size() << "\ndone\n";
    return out.str();
  }
  std::string operator()(const SessionOpenedPayload& p) const {
    std::ostringstream out;
    out << "ok=true\nsession=" << p.session << "\ndone\n";
    return out.str();
  }
  std::string operator()(const EditAppliedPayload&) const {
    return "ok=true\ndone\n";
  }
  std::string operator()(const SessionClosedPayload&) const {
    return "ok=true\ndone\n";
  }
  std::string operator()(const AnalysisPayload& p) const {
    return format_analysis_block(p, micros);
  }
  std::string operator()(const StatsPayload& p) const {
    return format_stats_block(p);
  }
  std::string operator()(const MetricsPayload& p) const {
    return format_metrics_block(p);
  }
  std::string operator()(const ShutdownPayload& p) const {
    std::ostringstream out;
    out << "ok=true\nkind=shutdown\nhandled=" << p.handled << "\ndone\n";
    return out.str();
  }
  std::string operator()(const SnapshotPayload& p) const {
    // Not reachable over the line protocol (it has no snapshot
    // command); rendered for programmatic callers, like batch above.
    std::ostringstream out;
    out << "ok=true\nkind=snapshot\naction=" << p.action
        << "\nresult_entries=" << p.result_entries
        << "\nsubtree_entries=" << p.subtree_entries
        << "\nfile_bytes=" << p.file_bytes << "\ndone\n";
    return out.str();
  }
};

template <typename Counters>
void append_json_counters(std::ostringstream& out, const Counters& c) {
  out << "{\"hits\":" << c.hits << ",\"misses\":" << c.misses
      << ",\"insertions\":" << c.insertions << ",\"evictions\":"
      << c.evictions << ",\"collisions\":" << c.collisions
      << ",\"entries\":" << c.entries << ",\"bytes\":" << c.bytes << '}';
}

}  // namespace

std::string format_line(const Response& response) {
  if (response.code != ErrorCode::Ok) return error_block(response.error);
  return std::visit(LineFormatter{response.micros}, response.payload);
}

std::string format_stats_json_line(const StatsPayload& s) {
  std::ostringstream out;
  out << "ok=true\njson={\"cache\":";
  append_json_counters(out, s.cache);
  out << ",\"subtree\":";
  append_json_counters(out, s.subtree);
  out << ",\"sessions\":" << s.sessions << ",\"api\":{\"requests\":"
      << s.api.requests << ",\"solves\":" << s.api.solves
      << ",\"batches\":" << s.api.batches << ",\"session_opens\":"
      << s.api.session_opens << ",\"session_edits\":" << s.api.session_edits
      << ",\"session_resolves\":" << s.api.session_resolves
      << ",\"session_closes\":" << s.api.session_closes << ",\"analyses\":"
      << s.api.analyses << ",\"errors\":" << s.api.errors
      << "},\"latency\":{\"count\":" << s.latency.count
      << ",\"sum_micros\":" << s.latency.sum_micros << ",\"p50\":"
      << num(s.latency.p50) << ",\"p95\":" << num(s.latency.p95)
      << ",\"p99\":" << num(s.latency.p99) << "},\"persist\":{\"saves\":"
      << s.persist.saves << ",\"loads\":" << s.persist.loads
      << ",\"save_errors\":" << s.persist.save_errors
      << ",\"load_errors\":" << s.persist.load_errors
      << ",\"snapshot_bytes\":" << s.persist.snapshot_bytes
      << "}}\ndone\n";
  return out.str();
}

std::string format_metrics_json_line(const MetricsPayload& p) {
  // The registry JSON is already canonical; it ships verbatim.
  return "ok=true\njson=" + p.json + "\ndone\n";
}

}  // namespace atcd::api
