#include "api/json.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "analysis/analysis.hpp"

namespace atcd::api::json {
namespace {

/// Garbage input must never blow the stack.
constexpr int kMaxDepth = 64;

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  std::string err;

  bool fail(const std::string& what) {
    if (err.empty())
      err = what + " at byte " + std::to_string(i);
    return false;
  }

  void skip_ws() {
    while (i < s.size() &&
           (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r'))
      ++i;
  }

  bool literal(const char* word, std::size_t len) {
    if (s.compare(i, len, word) != 0) return fail("bad literal");
    i += len;
    return true;
  }

  bool parse_hex4(unsigned* out) {
    if (i + 4 > s.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = s[i + static_cast<std::size_t>(k)];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("bad \\u escape");
    }
    i += 4;
    *out = v;
    return true;
  }

  static void append_utf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string* out) {
    if (i >= s.size() || s[i] != '"') return fail("expected string");
    ++i;
    out->clear();
    while (i < s.size()) {
      const char c = s[i];
      if (c == '"') {
        ++i;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out->push_back(c);
        ++i;
        continue;
      }
      ++i;
      if (i >= s.size()) return fail("truncated escape");
      const char e = s[i++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(&cp)) return false;
          // Combine a surrogate pair; a lone surrogate is an error.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (i + 2 > s.size() || s[i] != '\\' || s[i + 1] != 'u')
              return fail("lone high surrogate");
            i += 2;
            unsigned lo = 0;
            if (!parse_hex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF)
              return fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(double* out) {
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    if (i >= s.size() || s[i] < '0' || s[i] > '9')
      return fail("bad number");
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    if (i < s.size() && s[i] == '.') {
      ++i;
      if (i >= s.size() || s[i] < '0' || s[i] > '9')
        return fail("bad number fraction");
      while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      if (i >= s.size() || s[i] < '0' || s[i] > '9')
        return fail("bad number exponent");
      while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    }
    const std::string tok = s.substr(start, i - start);
    *out = std::strtod(tok.c_str(), nullptr);
    if (!std::isfinite(*out)) return fail("number out of range");
    return true;
  }

  bool parse_value(Value* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (i >= s.size()) return fail("unexpected end of input");
    const char c = s[i];
    if (c == 'n') {
      out->kind = Value::Kind::Null;
      return literal("null", 4);
    }
    if (c == 't') {
      out->kind = Value::Kind::Bool;
      out->boolean = true;
      return literal("true", 4);
    }
    if (c == 'f') {
      out->kind = Value::Kind::Bool;
      out->boolean = false;
      return literal("false", 5);
    }
    if (c == '"') {
      out->kind = Value::Kind::String;
      return parse_string(&out->string);
    }
    if (c == '[') {
      ++i;
      out->kind = Value::Kind::Array;
      skip_ws();
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      while (true) {
        out->items.emplace_back();
        if (!parse_value(&out->items.back(), depth + 1)) return false;
        skip_ws();
        if (i >= s.size()) return fail("unterminated array");
        if (s[i] == ',') {
          ++i;
          continue;
        }
        if (s[i] == ']') {
          ++i;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++i;
      out->kind = Value::Kind::Object;
      skip_ws();
      if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (i >= s.size() || s[i] != ':') return fail("expected ':'");
        ++i;
        out->members.emplace_back(std::move(key), Value{});
        if (!parse_value(&out->members.back().second, depth + 1))
          return false;
        skip_ws();
        if (i >= s.size()) return fail("unterminated object");
        if (s[i] == ',') {
          ++i;
          continue;
        }
        if (s[i] == '}') {
          ++i;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      out->kind = Value::Kind::Number;
      return parse_number(&out->number);
    }
    return fail("unexpected character");
  }
};

std::string num_str(double v) {
  // JSON has no non-finite literals.  Emitting null (instead of a
  // silent 0) makes the receiving decoder reject the field with a
  // typed error, so an in-process caller who serializes e.g. an
  // infinite portfolio budget learns about it rather than having its
  // meaning inverted on the wire.
  if (!std::isfinite(v)) return "null";
  return analysis::format_num(v);
}

void append_quoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void dump_into(const Value& v, std::string* out) {
  switch (v.kind) {
    case Value::Kind::Null: *out += "null"; return;
    case Value::Kind::Bool: *out += v.boolean ? "true" : "false"; return;
    case Value::Kind::Number: *out += num_str(v.number); return;
    case Value::Kind::String: append_quoted(out, v.string); return;
    case Value::Kind::Array: {
      out->push_back('[');
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i) out->push_back(',');
        dump_into(v.items[i], out);
      }
      out->push_back(']');
      return;
    }
    case Value::Kind::Object: {
      out->push_back('{');
      for (std::size_t i = 0; i < v.members.size(); ++i) {
        if (i) out->push_back(',');
        append_quoted(out, v.members[i].first);
        out->push_back(':');
        dump_into(v.members[i].second, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

bool parse(const std::string& text, Value* out, std::string* error) {
  Parser p{text, 0, {}};
  *out = Value{};
  if (!p.parse_value(out, 0)) {
    if (error) *error = p.err;
    return false;
  }
  p.skip_ws();
  if (p.i != text.size()) {
    if (error) *error = "trailing bytes after document";
    return false;
  }
  return true;
}

std::string dump(const Value& value) {
  std::string out;
  dump_into(value, &out);
  return out;
}

std::string dump_number(double value) { return num_str(value); }

std::string dump_string(const std::string& value) {
  std::string out;
  append_quoted(&out, value);
  return out;
}

}  // namespace atcd::api::json

namespace atcd::api {
namespace {

using json::Value;

/// Canonical-order object writer for the encoders.
class Obj {
 public:
  Obj() : out_("{") {}

  void str(const char* key, const std::string& v) {
    begin(key);
    out_ += json::dump_string(v);
  }
  void num(const char* key, double v) {
    begin(key);
    out_ += json::dump_number(v);
  }
  void uint(const char* key, std::uint64_t v) {
    begin(key);
    out_ += std::to_string(v);
  }
  void boolean(const char* key, bool v) {
    begin(key);
    out_ += v ? "true" : "false";
  }
  /// Pre-rendered JSON (arrays / nested objects).
  void raw(const char* key, const std::string& rendered) {
    begin(key);
    out_ += rendered;
  }

  std::string close() {
    out_ += '}';
    return std::move(out_);
  }

 private:
  void begin(const char* key) {
    if (!first_) out_ += ',';
    first_ = false;
    out_ += '"';
    out_ += key;
    out_ += "\":";
  }

  std::string out_;
  bool first_ = true;
};

std::string quoted(const std::string& s) { return json::dump_string(s); }

std::string string_array(const std::vector<std::string>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ',';
    out += quoted(xs[i]);
  }
  out += ']';
  return out;
}

std::string hash_hex(service::CanonHash h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

// ---------------------------------------------------------------------------
// Request encoding.
// ---------------------------------------------------------------------------

void encode_spec_fields(Obj* o, const SolveSpec& s) {
  o->str("problem", engine::to_string(s.problem));
  if (s.has_bound) o->num("bound", s.bound);
  if (!s.engine.empty()) o->str("engine", s.engine);
  o->str("model", s.model);
}

std::string encode_spec(const SolveSpec& s) {
  Obj o;
  encode_spec_fields(&o, s);
  return o.close();
}

struct RequestEncoder {
  Obj& o;

  void operator()(const SolveRequest& r) { encode_spec_fields(&o, r.spec); }
  void operator()(const BatchRequest& r) {
    if (r.threads != 0) o.uint("threads", r.threads);
    std::string items = "[";
    for (std::size_t i = 0; i < r.items.size(); ++i) {
      if (i) items += ',';
      items += encode_spec(r.items[i]);
    }
    items += ']';
    o.raw("items", items);
  }
  void operator()(const SessionOpenRequest& r) {
    encode_spec_fields(&o, r.spec);
  }
  void operator()(const SessionEditRequest& r) {
    o.uint("session", r.session);
    o.str("edit", to_string(r.op));
    o.str("target", r.target);
    if (r.op == EditOp::SetCost || r.op == EditOp::SetProb ||
        r.op == EditOp::SetDamage)
      o.num("value", r.value);
    if (r.op == EditOp::ReplaceSubtree) o.str("model", r.model);
  }
  void operator()(const SessionResolveRequest& r) {
    o.uint("session", r.session);
  }
  void operator()(const SessionCloseRequest& r) { o.uint("session", r.session); }
  void operator()(const AnalyzeSweepRequest& r) {
    o.str("problem", engine::to_string(r.problem));
    o.raw("axes", string_array(r.axes));
    if (r.has_bound) o.num("bound", r.bound);
    if (!r.engine.empty()) o.str("engine", r.engine);
    o.str("model", r.model);
  }
  void operator()(const AnalyzeSensitivityRequest& r) {
    o.str("problem", engine::to_string(r.problem));
    if (r.has_step) o.num("step", r.step);
    if (!r.engine.empty()) o.str("engine", r.engine);
    o.str("model", r.model);
  }
  void operator()(const AnalyzePortfolioRequest& r) {
    o.str("problem", engine::to_string(r.problem));
    o.raw("defenses", string_array(r.defenses));
    if (r.has_budget) o.num("budget", r.budget);
    if (r.has_bound) o.num("bound", r.bound);
    if (!r.engine.empty()) o.str("engine", r.engine);
    o.str("model", r.model);
  }
  void operator()(const StatsRequest&) {}
  void operator()(const MetricsRequest&) {}
  void operator()(const ShutdownRequest&) {}
  void operator()(const SnapshotSaveRequest& r) { o.str("path", r.path); }
  void operator()(const SnapshotLoadRequest& r) { o.str("path", r.path); }
};

// ---------------------------------------------------------------------------
// Request decoding.
// ---------------------------------------------------------------------------

/// Strict field cursor over one object: typed getters mark fields
/// consumed; leftover() names any member the op does not define.
class Fields {
 public:
  explicit Fields(const Value& obj) : obj_(obj), used_(obj.members.size()) {}

  const Value* get(const std::string& key) {
    for (std::size_t i = 0; i < obj_.members.size(); ++i)
      if (obj_.members[i].first == key) {
        used_[i] = true;
        return &obj_.members[i].second;
      }
    return nullptr;
  }

  /// First member not consumed and not in the envelope set; empty when
  /// everything was recognized.
  std::string leftover() const {
    for (std::size_t i = 0; i < obj_.members.size(); ++i) {
      const std::string& k = obj_.members[i].first;
      if (!used_[i] && k != "v" && k != "id" && k != "op") return k;
    }
    return {};
  }

 private:
  const Value& obj_;
  std::vector<char> used_;
};

struct FieldError {
  ErrorCode code = ErrorCode::Ok;
  std::string message;
  bool ok() const { return code == ErrorCode::Ok; }
  static FieldError invalid(std::string m) {
    return {ErrorCode::InvalidArgument, std::move(m)};
  }
};

FieldError require_string(Fields& f, const char* key, std::string* out) {
  const Value* v = f.get(key);
  if (!v) return FieldError::invalid(std::string("missing field \"") + key +
                                     "\"");
  if (v->kind != Value::Kind::String)
    return FieldError::invalid(std::string("field \"") + key +
                               "\" must be a string");
  *out = v->string;
  return {};
}

FieldError optional_string(Fields& f, const char* key, std::string* out) {
  const Value* v = f.get(key);
  if (!v) return {};
  if (v->kind != Value::Kind::String)
    return FieldError::invalid(std::string("field \"") + key +
                               "\" must be a string");
  *out = v->string;
  return {};
}

FieldError optional_number(Fields& f, const char* key, double* out,
                           bool* present) {
  const Value* v = f.get(key);
  if (!v) return {};
  if (v->kind != Value::Kind::Number)
    return FieldError::invalid(std::string("field \"") + key +
                               "\" must be a finite number");
  *out = v->number;
  if (present) *present = true;
  return {};
}

FieldError require_uint(Fields& f, const char* key, std::uint64_t* out) {
  const Value* v = f.get(key);
  if (!v) return FieldError::invalid(std::string("missing field \"") + key +
                                     "\"");
  if (v->kind != Value::Kind::Number || v->number < 0.0 ||
      std::floor(v->number) != v->number || v->number > 9.007199254740992e15)
    return FieldError::invalid(std::string("field \"") + key +
                               "\" must be a non-negative integer");
  *out = static_cast<std::uint64_t>(v->number);
  return {};
}

FieldError require_string_array(Fields& f, const char* key,
                                std::vector<std::string>* out) {
  const Value* v = f.get(key);
  if (!v) return FieldError::invalid(std::string("missing field \"") + key +
                                     "\"");
  if (v->kind != Value::Kind::Array)
    return FieldError::invalid(std::string("field \"") + key +
                               "\" must be an array of strings");
  for (const Value& item : v->items) {
    if (item.kind != Value::Kind::String)
      return FieldError::invalid(std::string("field \"") + key +
                                 "\" must be an array of strings");
    out->push_back(item.string);
  }
  return {};
}

FieldError decode_problem(Fields& f, engine::Problem* out) {
  std::string name;
  if (FieldError e = require_string(f, "problem", &name); !e.ok()) return e;
  const auto p = parse_problem(name);
  if (!p)
    return FieldError::invalid("unknown problem '" + name +
                               "' (expected cdpf|dgc|cgd|cedpf|edgc|cged)");
  *out = *p;
  return {};
}

FieldError decode_spec(Fields& f, SolveSpec* out) {
  if (FieldError e = decode_problem(f, &out->problem); !e.ok()) return e;
  if (FieldError e = optional_number(f, "bound", &out->bound,
                                     &out->has_bound);
      !e.ok())
    return e;
  if (out->has_bound && !std::isfinite(out->bound))
    return FieldError::invalid("bad bound (must be finite)");
  if (FieldError e = optional_string(f, "engine", &out->engine); !e.ok())
    return e;
  return require_string(f, "model", &out->model);
}

FieldError decode_operation(const std::string& op, Fields& f,
                            Operation* out) {
  if (op == "solve") {
    SolveRequest r;
    if (FieldError e = decode_spec(f, &r.spec); !e.ok()) return e;
    *out = std::move(r);
    return {};
  }
  if (op == "batch") {
    BatchRequest r;
    double threads = 0.0;
    bool has_threads = false;
    if (FieldError e = optional_number(f, "threads", &threads, &has_threads);
        !e.ok())
      return e;
    if (has_threads) {
      if (threads < 0.0 || std::floor(threads) != threads ||
          threads > 65536.0)
        return FieldError::invalid(
            "field \"threads\" must be a small non-negative integer");
      r.threads = static_cast<std::size_t>(threads);
    }
    const Value* items = f.get("items");
    if (!items) return FieldError::invalid("missing field \"items\"");
    if (items->kind != Value::Kind::Array)
      return FieldError::invalid("field \"items\" must be an array");
    for (std::size_t i = 0; i < items->items.size(); ++i) {
      const Value& item = items->items[i];
      if (item.kind != Value::Kind::Object)
        return FieldError::invalid("batch item " + std::to_string(i) +
                                   " must be an object");
      Fields g(item);
      SolveSpec spec;
      if (FieldError e = decode_spec(g, &spec); !e.ok())
        return FieldError::invalid("batch item " + std::to_string(i) + ": " +
                                   e.message);
      // Items reuse the spec field set, but have no envelope of their
      // own — leftover() must not excuse v/id/op here.
      if (item.find("v") || item.find("id") || item.find("op") ||
          !g.leftover().empty())
        return FieldError::invalid("batch item " + std::to_string(i) +
                                   ": unknown field");
      r.items.push_back(std::move(spec));
    }
    *out = std::move(r);
    return {};
  }
  if (op == "open") {
    SessionOpenRequest r;
    if (FieldError e = decode_spec(f, &r.spec); !e.ok()) return e;
    *out = std::move(r);
    return {};
  }
  if (op == "edit") {
    SessionEditRequest r;
    if (FieldError e = require_uint(f, "session", &r.session); !e.ok())
      return e;
    std::string edit;
    if (FieldError e = require_string(f, "edit", &edit); !e.ok()) return e;
    const auto eop = parse_edit_op(edit);
    if (!eop)
      return FieldError::invalid(
          "unknown edit op '" + edit +
          "' (expected set-cost, set-prob, set-damage, toggle-defense, or "
          "replace-subtree)");
    r.op = *eop;
    if (FieldError e = require_string(f, "target", &r.target); !e.ok())
      return e;
    const bool needs_value = r.op == EditOp::SetCost ||
                             r.op == EditOp::SetProb ||
                             r.op == EditOp::SetDamage;
    bool has_value = false;
    if (FieldError e = optional_number(f, "value", &r.value, &has_value);
        !e.ok())
      return e;
    if (needs_value && (!has_value || !std::isfinite(r.value)))
      return FieldError::invalid("edit " + edit +
                                 " needs a finite \"value\"");
    if (!needs_value && has_value)
      return FieldError::invalid("edit " + edit + " takes no \"value\"");
    std::string model;
    bool has_model = false;
    if (const Value* v = f.get("model")) {
      if (v->kind != Value::Kind::String)
        return FieldError::invalid("field \"model\" must be a string");
      model = v->string;
      has_model = true;
    }
    if (r.op == EditOp::ReplaceSubtree && !has_model)
      return FieldError::invalid("edit replace-subtree needs a \"model\"");
    if (r.op != EditOp::ReplaceSubtree && has_model)
      return FieldError::invalid("edit " + edit + " takes no \"model\"");
    r.model = std::move(model);
    *out = std::move(r);
    return {};
  }
  if (op == "resolve") {
    SessionResolveRequest r;
    if (FieldError e = require_uint(f, "session", &r.session); !e.ok())
      return e;
    *out = r;
    return {};
  }
  if (op == "close") {
    SessionCloseRequest r;
    if (FieldError e = require_uint(f, "session", &r.session); !e.ok())
      return e;
    *out = r;
    return {};
  }
  if (op == "sweep") {
    AnalyzeSweepRequest r;
    if (FieldError e = decode_problem(f, &r.problem); !e.ok()) return e;
    if (FieldError e = require_string_array(f, "axes", &r.axes); !e.ok())
      return e;
    if (FieldError e = optional_number(f, "bound", &r.bound, &r.has_bound);
        !e.ok())
      return e;
    if (r.has_bound && !std::isfinite(r.bound))
      return FieldError::invalid("bad bound (must be finite)");
    if (FieldError e = optional_string(f, "engine", &r.engine); !e.ok())
      return e;
    if (FieldError e = require_string(f, "model", &r.model); !e.ok())
      return e;
    *out = std::move(r);
    return {};
  }
  if (op == "sensitivity") {
    AnalyzeSensitivityRequest r;
    if (FieldError e = decode_problem(f, &r.problem); !e.ok()) return e;
    if (FieldError e = optional_number(f, "step", &r.step, &r.has_step);
        !e.ok())
      return e;
    if (r.has_step && !(std::isfinite(r.step) && r.step > 0.0))
      return FieldError::invalid("bad step (must be > 0)");
    if (FieldError e = optional_string(f, "engine", &r.engine); !e.ok())
      return e;
    if (FieldError e = require_string(f, "model", &r.model); !e.ok())
      return e;
    *out = std::move(r);
    return {};
  }
  if (op == "portfolio") {
    AnalyzePortfolioRequest r;
    if (FieldError e = decode_problem(f, &r.problem); !e.ok()) return e;
    if (FieldError e = require_string_array(f, "defenses", &r.defenses);
        !e.ok())
      return e;
    if (FieldError e = optional_number(f, "budget", &r.budget,
                                       &r.has_budget);
        !e.ok())
      return e;
    if (r.has_budget && !(std::isfinite(r.budget) && r.budget >= 0.0))
      return FieldError::invalid("bad budget (must be >= 0)");
    if (FieldError e = optional_number(f, "bound", &r.bound, &r.has_bound);
        !e.ok())
      return e;
    if (r.has_bound && !std::isfinite(r.bound))
      return FieldError::invalid("bad bound (must be finite)");
    if (FieldError e = optional_string(f, "engine", &r.engine); !e.ok())
      return e;
    if (FieldError e = require_string(f, "model", &r.model); !e.ok())
      return e;
    *out = std::move(r);
    return {};
  }
  if (op == "stats") {
    *out = StatsRequest{};
    return {};
  }
  if (op == "metrics") {
    *out = MetricsRequest{};
    return {};
  }
  if (op == "quit") {
    *out = ShutdownRequest{};
    return {};
  }
  if (op == "snapshot-save") {
    SnapshotSaveRequest r;
    if (FieldError e = require_string(f, "path", &r.path); !e.ok()) return e;
    *out = std::move(r);
    return {};
  }
  if (op == "snapshot-load") {
    SnapshotLoadRequest r;
    if (FieldError e = require_string(f, "path", &r.path); !e.ok()) return e;
    *out = std::move(r);
    return {};
  }
  return {ErrorCode::UnknownOperation,
          "unknown op '" + op +
              "' (expected solve, batch, open, edit, resolve, close, sweep, "
              "sensitivity, portfolio, stats, metrics, snapshot-save, "
              "snapshot-load, or quit)"};
}

// ---------------------------------------------------------------------------
// Response encoding.
// ---------------------------------------------------------------------------

void encode_solve_fields(Obj* o, const SolvePayload& p) {
  o->str("kind", p.is_front ? "front" : "attack");
  o->str("problem", engine::to_string(p.problem));
  o->str("engine", p.backend);
  o->str("cache", p.cache);
  o->str("hash", hash_hex(p.hash));
  if (p.is_front) {
    std::string pts = "[";
    for (std::size_t i = 0; i < p.points.size(); ++i) {
      if (i) pts += ',';
      Obj q;
      q.num("cost", p.points[i].cost);
      q.num("damage", p.points[i].damage);
      q.str("attack", p.points[i].attack);
      pts += q.close();
    }
    pts += ']';
    o->raw("points", pts);
  } else {
    o->boolean("feasible", p.feasible);
    if (p.feasible) {
      o->num("cost", p.cost);
      o->num("damage", p.damage);
      o->str("attack", p.attack);
    }
  }
}

/// Both cache Stats types share the same counter fields.
template <typename Stats>
std::string counter_obj(const Stats& c) {
  Obj o;
  o.uint("hits", c.hits);
  o.uint("misses", c.misses);
  o.uint("insertions", c.insertions);
  o.uint("evictions", c.evictions);
  o.uint("collisions", c.collisions);
  o.uint("entries", c.entries);
  o.uint("bytes", c.bytes);
  return o.close();
}

std::string counter_obj(const PersistCounters& c) {
  Obj o;
  o.uint("saves", c.saves);
  o.uint("loads", c.loads);
  o.uint("save_errors", c.save_errors);
  o.uint("load_errors", c.load_errors);
  o.uint("snapshot_bytes", c.snapshot_bytes);
  return o.close();
}

std::string counter_obj(const DispatchCounters& c) {
  Obj o;
  o.uint("requests", c.requests);
  o.uint("solves", c.solves);
  o.uint("batches", c.batches);
  o.uint("session_opens", c.session_opens);
  o.uint("session_edits", c.session_edits);
  o.uint("session_resolves", c.session_resolves);
  o.uint("session_closes", c.session_closes);
  o.uint("analyses", c.analyses);
  o.uint("errors", c.errors);
  return o.close();
}

std::vector<std::string> table_rows(const std::string& table) {
  std::vector<std::string> rows;
  std::size_t start = 0;
  while (start < table.size()) {
    std::size_t nl = table.find('\n', start);
    if (nl == std::string::npos) nl = table.size();
    rows.push_back(table.substr(start, nl - start));
    start = nl + 1;
  }
  return rows;
}

struct PayloadEncoder {
  Obj& o;
  bool with_timing = false;

  void operator()(const std::monostate&) {}
  void operator()(const SolvePayload& p) { encode_solve_fields(&o, p); }
  void operator()(const BatchPayload& p) {
    o.str("kind", "batch");
    std::string items = "[";
    for (std::size_t i = 0; i < p.items.size(); ++i) {
      if (i) items += ',';
      Obj q;
      q.str("code", to_string(p.items[i].code));
      if (p.items[i].code == ErrorCode::Ok)
        encode_solve_fields(&q, p.items[i].solve);
      else
        q.str("error", p.items[i].error);
      items += q.close();
    }
    items += ']';
    o.raw("items", items);
  }
  void operator()(const SessionOpenedPayload& p) {
    o.str("kind", "session");
    o.uint("session", p.session);
  }
  void operator()(const EditAppliedPayload&) { o.str("kind", "edited"); }
  void operator()(const SessionClosedPayload&) { o.str("kind", "closed"); }
  void operator()(const AnalysisPayload& p) {
    o.str("kind", "analysis");
    o.str("analysis", p.kind);
    o.raw("rows", string_array(table_rows(p.table)));
  }
  void operator()(const StatsPayload& p) {
    o.str("kind", "stats");
    o.raw("cache", counter_obj(p.cache));
    o.raw("subtree", counter_obj(p.subtree));
    o.uint("sessions", p.sessions);
    o.raw("api", counter_obj(p.api));
    o.raw("persist", counter_obj(p.persist));
    // Wall-clock data, gated like the envelope's micros field: stats
    // responses stay byte-deterministic when timing echo is off.
    if (with_timing) {
      Obj lat;
      lat.uint("count", p.latency.count);
      lat.uint("sum_micros", p.latency.sum_micros);
      lat.num("p50", p.latency.p50);
      lat.num("p95", p.latency.p95);
      lat.num("p99", p.latency.p99);
      o.raw("latency", lat.close());
    }
  }
  void operator()(const MetricsPayload& p) {
    o.str("kind", "metrics");
    // `json` is already a canonical JSON object (Registry::to_json), so
    // it embeds verbatim; the Prometheus text travels as a string.
    o.raw("metrics", p.json);
    o.str("text", p.text);
  }
  void operator()(const ShutdownPayload& p) {
    o.str("kind", "shutdown");
    o.uint("handled", p.handled);
  }
  void operator()(const SnapshotPayload& p) {
    o.str("kind", "snapshot");
    o.str("action", p.action);
    o.str("path", p.path);
    o.uint("result_entries", p.result_entries);
    o.uint("subtree_entries", p.subtree_entries);
    o.uint("file_bytes", p.file_bytes);
  }
};

// ---------------------------------------------------------------------------
// Response decoding.
// ---------------------------------------------------------------------------

bool read_uint(const Value& obj, const char* key, std::uint64_t* out) {
  const Value* v = obj.find(key);
  // Same 2^53 cap as require_uint: a larger double is not exactly
  // representable and the cast would be undefined behavior.
  if (!v || v->kind != Value::Kind::Number || v->number < 0.0 ||
      std::floor(v->number) != v->number ||
      v->number > 9.007199254740992e15)
    return false;
  *out = static_cast<std::uint64_t>(v->number);
  return true;
}

bool read_string(const Value& obj, const char* key, std::string* out) {
  const Value* v = obj.find(key);
  if (!v || v->kind != Value::Kind::String) return false;
  *out = v->string;
  return true;
}

bool read_number(const Value& obj, const char* key, double* out) {
  const Value* v = obj.find(key);
  if (!v || v->kind != Value::Kind::Number) return false;
  *out = v->number;
  return true;
}

bool decode_solve_payload(const Value& obj, const std::string& kind,
                          SolvePayload* p, std::string* err) {
  p->is_front = kind == "front";
  std::string problem;
  if (!read_string(obj, "problem", &problem)) {
    *err = "missing \"problem\"";
    return false;
  }
  const auto prob = parse_problem(problem);
  if (!prob) {
    *err = "unknown problem in response";
    return false;
  }
  p->problem = *prob;
  read_string(obj, "engine", &p->backend);
  read_string(obj, "cache", &p->cache);
  std::string hash;
  if (read_string(obj, "hash", &hash))
    p->hash = static_cast<service::CanonHash>(
        std::strtoull(hash.c_str(), nullptr, 16));
  if (p->is_front) {
    const Value* pts = obj.find("points");
    if (!pts || pts->kind != Value::Kind::Array) {
      *err = "missing \"points\"";
      return false;
    }
    for (const Value& pt : pts->items) {
      if (pt.kind != Value::Kind::Object) {
        *err = "bad point";
        return false;
      }
      FrontPointPayload fp;
      if (!read_number(pt, "cost", &fp.cost) ||
          !read_number(pt, "damage", &fp.damage) ||
          !read_string(pt, "attack", &fp.attack)) {
        *err = "bad point";
        return false;
      }
      p->points.push_back(std::move(fp));
    }
  } else {
    const Value* f = obj.find("feasible");
    if (!f || f->kind != Value::Kind::Bool) {
      *err = "missing \"feasible\"";
      return false;
    }
    p->feasible = f->boolean;
    if (p->feasible &&
        (!read_number(obj, "cost", &p->cost) ||
         !read_number(obj, "damage", &p->damage) ||
         !read_string(obj, "attack", &p->attack))) {
      *err = "missing attack fields";
      return false;
    }
  }
  return true;
}

template <typename Stats>
void decode_counter_stats(const Value& obj, const char* key, Stats* out) {
  const Value* v = obj.find(key);
  if (!v || v->kind != Value::Kind::Object) return;
  read_uint(*v, "hits", &out->hits);
  read_uint(*v, "misses", &out->misses);
  read_uint(*v, "insertions", &out->insertions);
  read_uint(*v, "evictions", &out->evictions);
  read_uint(*v, "collisions", &out->collisions);
  std::uint64_t n = 0;
  if (read_uint(*v, "entries", &n)) out->entries = n;
  if (read_uint(*v, "bytes", &n)) out->bytes = n;
}

void decode_api_counters(const Value& obj, DispatchCounters* out) {
  const Value* v = obj.find("api");
  if (!v || v->kind != Value::Kind::Object) return;
  read_uint(*v, "requests", &out->requests);
  read_uint(*v, "solves", &out->solves);
  read_uint(*v, "batches", &out->batches);
  read_uint(*v, "session_opens", &out->session_opens);
  read_uint(*v, "session_edits", &out->session_edits);
  read_uint(*v, "session_resolves", &out->session_resolves);
  read_uint(*v, "session_closes", &out->session_closes);
  read_uint(*v, "analyses", &out->analyses);
  read_uint(*v, "errors", &out->errors);
}

}  // namespace

std::string encode_request(const Request& request) {
  Obj o;
  o.uint("v", static_cast<std::uint64_t>(kVersion));
  if (!request.id.empty()) o.str("id", request.id);
  o.str("op", op_name(request.op));
  if (request.trace) o.boolean("trace", true);
  RequestEncoder enc{o};
  std::visit(enc, request.op);
  return o.close();
}

Decoded<Request> decode_request(const std::string& text) {
  Decoded<Request> out;
  const auto fail = [&](ErrorCode code, std::string msg) {
    out.code = code;
    out.error = std::move(msg);
    return out;
  };

  // Hard ceiling at the decoder entry: even a transport that forgot to
  // cap its reads cannot make the parser chew an unbounded document.
  if (text.size() > kMaxDecodeBytes)
    return fail(ErrorCode::Capacity,
                "request exceeds " + std::to_string(kMaxDecodeBytes) +
                    " bytes");

  Value doc;
  std::string perr;
  if (!json::parse(text, &doc, &perr))
    return fail(ErrorCode::MalformedRequest, "bad JSON: " + perr);
  if (doc.kind != Value::Kind::Object)
    return fail(ErrorCode::MalformedRequest, "request must be a JSON object");

  // The id is extracted before anything can fail below, so even a
  // payload-level error response can be matched by the client.
  if (const Value* id = doc.find("id")) {
    if (id->kind == Value::Kind::String)
      out.value.id = id->string;
    else if (id->kind == Value::Kind::Number)
      out.value.id = analysis::format_num(id->number);
    else
      return fail(ErrorCode::MalformedRequest,
                  "field \"id\" must be a string or number");
  }

  const Value* v = doc.find("v");
  if (!v)
    return fail(ErrorCode::MalformedRequest, "missing envelope field \"v\"");
  if (v->kind != Value::Kind::Number ||
      v->number != static_cast<double>(kVersion))
    return fail(ErrorCode::UnsupportedVersion,
                "unsupported envelope version (this server speaks v1)");

  const Value* op = doc.find("op");
  if (!op || op->kind != Value::Kind::String)
    return fail(ErrorCode::MalformedRequest,
                "missing envelope field \"op\"");

  Fields fields(doc);
  // Envelope-level opt-in, legal on every op (consumed before the
  // leftover check so it never reads as an unknown field).
  if (const Value* tr = fields.get("trace")) {
    if (tr->kind != Value::Kind::Bool)
      return fail(ErrorCode::MalformedRequest,
                  "field \"trace\" must be a boolean");
    out.value.trace = tr->boolean;
  }
  FieldError err = decode_operation(op->string, fields, &out.value.op);
  if (!err.ok()) return fail(err.code, std::move(err.message));
  if (const std::string stray = fields.leftover(); !stray.empty())
    return fail(ErrorCode::InvalidArgument,
                "unknown field \"" + stray + "\" for op '" + op->string +
                    "'");
  return out;
}

std::string encode_response(const Response& response, bool with_micros) {
  Obj o;
  o.uint("v", static_cast<std::uint64_t>(kVersion));
  if (!response.id.empty()) o.str("id", response.id);
  o.str("code", to_string(response.code));
  if (response.code != ErrorCode::Ok) {
    o.str("error", response.error);
  } else {
    PayloadEncoder enc{o, with_micros};
    std::visit(enc, response.payload);
  }
  if (response.trace) {
    // Emitted on error responses too: a traced request that failed
    // still shows where the time went.  Facts are sorted by name so the
    // rendering is deterministic regardless of recording order.
    std::string spans = "[";
    for (std::size_t i = 0; i < response.trace->spans.size(); ++i) {
      if (i) spans += ',';
      const TraceSpanPayload& s = response.trace->spans[i];
      Obj q;
      q.str("name", s.name);
      q.uint("depth", s.depth);
      q.uint("start_us", s.start_us);
      q.uint("dur_us", s.dur_us);
      spans += q.close();
    }
    spans += ']';
    auto facts = response.trace->facts;
    std::sort(facts.begin(), facts.end());
    Obj fo;
    for (const auto& [name, v] : facts) fo.uint(name.c_str(), v);
    Obj t;
    t.raw("spans", spans);
    t.raw("facts", fo.close());
    o.raw("trace", t.close());
  }
  if (with_micros) o.num("micros", response.micros);
  return o.close();
}

Decoded<Response> decode_response(const std::string& text) {
  Decoded<Response> out;
  const auto fail = [&](std::string msg) {
    out.code = ErrorCode::MalformedRequest;
    out.error = std::move(msg);
    return out;
  };

  Value doc;
  std::string perr;
  if (!json::parse(text, &doc, &perr)) return fail("bad JSON: " + perr);
  if (doc.kind != Value::Kind::Object)
    return fail("response must be a JSON object");

  std::uint64_t version = 0;
  if (!read_uint(doc, "v", &version) ||
      version != static_cast<std::uint64_t>(kVersion))
    return fail("missing or foreign envelope version");
  if (const Value* id = doc.find("id")) {
    if (id->kind != Value::Kind::String)
      return fail("field \"id\" must be a string");
    out.value.id = id->string;
  }
  std::string code;
  if (!read_string(doc, "code", &code)) return fail("missing \"code\"");
  const auto ec = parse_error_code(code);
  if (!ec) return fail("unknown code '" + code + "'");
  out.value.code = *ec;
  read_number(doc, "micros", &out.value.micros);

  if (const Value* tr = doc.find("trace")) {
    if (tr->kind != Value::Kind::Object) return fail("bad \"trace\"");
    TracePayload tp;
    if (const Value* spans = tr->find("spans")) {
      if (spans->kind != Value::Kind::Array) return fail("bad trace spans");
      for (const Value& sv : spans->items) {
        if (sv.kind != Value::Kind::Object) return fail("bad trace span");
        TraceSpanPayload sp;
        if (!read_string(sv, "name", &sp.name) ||
            !read_uint(sv, "depth", &sp.depth) ||
            !read_uint(sv, "start_us", &sp.start_us) ||
            !read_uint(sv, "dur_us", &sp.dur_us))
          return fail("bad trace span");
        tp.spans.push_back(std::move(sp));
      }
    }
    if (const Value* facts = tr->find("facts")) {
      if (facts->kind != Value::Kind::Object) return fail("bad trace facts");
      for (const auto& [name, fv] : facts->members) {
        if (fv.kind != Value::Kind::Number || fv.number < 0.0 ||
            std::floor(fv.number) != fv.number ||
            fv.number > 9.007199254740992e15)
          return fail("bad trace fact");
        tp.facts.emplace_back(name, static_cast<std::uint64_t>(fv.number));
      }
    }
    out.value.trace = std::move(tp);
  }

  if (out.value.code != ErrorCode::Ok) {
    read_string(doc, "error", &out.value.error);
    return out;
  }

  std::string kind;
  if (!read_string(doc, "kind", &kind)) return out;  // bare ok
  std::string err;
  if (kind == "front" || kind == "attack") {
    SolvePayload p;
    if (!decode_solve_payload(doc, kind, &p, &err)) return fail(err);
    out.value.payload = std::move(p);
  } else if (kind == "batch") {
    BatchPayload p;
    const Value* items = doc.find("items");
    if (!items || items->kind != Value::Kind::Array)
      return fail("missing \"items\"");
    for (const Value& item : items->items) {
      if (item.kind != Value::Kind::Object) return fail("bad batch item");
      BatchPayload::Item bi;
      std::string icode;
      if (!read_string(item, "code", &icode)) return fail("bad batch item");
      const auto iec = parse_error_code(icode);
      if (!iec) return fail("bad batch item code");
      bi.code = *iec;
      if (bi.code == ErrorCode::Ok) {
        std::string ikind;
        if (!read_string(item, "kind", &ikind) ||
            !decode_solve_payload(item, ikind, &bi.solve, &err))
          return fail("bad batch item: " + err);
      } else {
        read_string(item, "error", &bi.error);
      }
      p.items.push_back(std::move(bi));
    }
    out.value.payload = std::move(p);
  } else if (kind == "session") {
    SessionOpenedPayload p;
    if (!read_uint(doc, "session", &p.session))
      return fail("missing \"session\"");
    out.value.payload = p;
  } else if (kind == "edited") {
    out.value.payload = EditAppliedPayload{};
  } else if (kind == "closed") {
    out.value.payload = SessionClosedPayload{};
  } else if (kind == "analysis") {
    AnalysisPayload p;
    if (!read_string(doc, "analysis", &p.kind))
      return fail("missing \"analysis\"");
    const Value* rows = doc.find("rows");
    if (!rows || rows->kind != Value::Kind::Array)
      return fail("missing \"rows\"");
    for (const Value& row : rows->items) {
      if (row.kind != Value::Kind::String) return fail("bad row");
      p.table += row.string;
      p.table += '\n';
    }
    out.value.payload = std::move(p);
  } else if (kind == "stats") {
    StatsPayload p;
    decode_counter_stats(doc, "cache", &p.cache);
    decode_counter_stats(doc, "subtree", &p.subtree);
    std::uint64_t sessions = 0;
    if (read_uint(doc, "sessions", &sessions)) p.sessions = sessions;
    decode_api_counters(doc, &p.api);
    if (const Value* per = doc.find("persist");
        per && per->kind == Value::Kind::Object) {
      read_uint(*per, "saves", &p.persist.saves);
      read_uint(*per, "loads", &p.persist.loads);
      read_uint(*per, "save_errors", &p.persist.save_errors);
      read_uint(*per, "load_errors", &p.persist.load_errors);
      read_uint(*per, "snapshot_bytes", &p.persist.snapshot_bytes);
    }
    if (const Value* lat = doc.find("latency");
        lat && lat->kind == Value::Kind::Object) {
      read_uint(*lat, "count", &p.latency.count);
      read_uint(*lat, "sum_micros", &p.latency.sum_micros);
      read_number(*lat, "p50", &p.latency.p50);
      read_number(*lat, "p95", &p.latency.p95);
      read_number(*lat, "p99", &p.latency.p99);
    }
    out.value.payload = std::move(p);
  } else if (kind == "metrics") {
    MetricsPayload p;
    const Value* m = doc.find("metrics");
    if (!m || m->kind != Value::Kind::Object)
      return fail("missing \"metrics\"");
    // Re-dump the embedded registry object; both sides use the same
    // canonical number rendering, so this is byte-stable.
    p.json = json::dump(*m);
    if (!read_string(doc, "text", &p.text)) return fail("missing \"text\"");
    out.value.payload = std::move(p);
  } else if (kind == "shutdown") {
    ShutdownPayload p;
    read_uint(doc, "handled", &p.handled);
    out.value.payload = p;
  } else if (kind == "snapshot") {
    SnapshotPayload p;
    if (!read_string(doc, "action", &p.action))
      return fail("missing \"action\"");
    read_string(doc, "path", &p.path);
    read_uint(doc, "result_entries", &p.result_entries);
    read_uint(doc, "subtree_entries", &p.subtree_entries);
    read_uint(doc, "file_bytes", &p.file_bytes);
    out.value.payload = std::move(p);
  } else {
    return fail("unknown kind '" + kind + "'");
  }
  return out;
}

}  // namespace atcd::api
