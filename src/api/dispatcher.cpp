#include "api/dispatcher.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <limits>
#include <optional>
#include <thread>

#include "analysis/portfolio.hpp"
#include "analysis/sensitivity.hpp"
#include "analysis/sweep.hpp"
#include "api/json.hpp"
#include "at/structure.hpp"
#include "engine/registry.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "persist/snapshot.hpp"
#include "service/timing.hpp"

namespace atcd::api {
namespace {

/// Maps a library exception onto the closed taxonomy.  Order matters:
/// the most specific classes first, the Error base last.
ErrorCode classify(const std::exception& e) {
  if (dynamic_cast<const ParseError*>(&e)) return ErrorCode::ParseError;
  if (dynamic_cast<const ModelError*>(&e)) return ErrorCode::ModelError;
  if (dynamic_cast<const CapacityError*>(&e)) return ErrorCode::Capacity;
  if (dynamic_cast<const UnsupportedError*>(&e))
    return ErrorCode::SolverFailure;
  if (dynamic_cast<const SolverError*>(&e)) return ErrorCode::SolverFailure;
  if (dynamic_cast<const Error*>(&e)) return ErrorCode::SolverFailure;
  return ErrorCode::Internal;
}

/// Typed per-operation failure used inside the handlers; dispatch_op
/// converts it into an error response.
struct Failure {
  ErrorCode code;
  std::string message;
};

[[noreturn]] void raise(ErrorCode code, std::string message) {
  throw Failure{code, std::move(message)};
}

SolvePayload payload_of(const service::Response& r) {
  SolvePayload p;
  p.problem = r.problem;
  p.backend = r.result.backend;
  p.cache = r.cache_hit ? "hit" : r.coalesced ? "coalesced" : "miss";
  p.hash = r.model_hash;
  p.is_front = engine::is_front(r.problem);
  const AttackTree* tree =
      r.det ? &r.det->tree : r.prob ? &r.prob->tree : nullptr;
  const auto render = [&](const Attack& witness) {
    return tree ? attack_to_string(*tree, witness) : witness.to_string();
  };
  if (p.is_front) {
    p.points.reserve(r.result.front.size());
    for (const FrontPoint& fp : r.result.front)
      p.points.push_back(
          {fp.value.cost, fp.value.damage, render(fp.witness)});
  } else {
    const OptAttack& a = r.result.attack;
    p.feasible = a.feasible;
    if (a.feasible) {
      p.cost = a.cost;
      p.damage = a.damage;
      p.attack = render(a.witness);
    }
  }
  return p;
}

/// Parses model text for \p problem into the matching model kind.
/// Throws ParseError / ModelError.
void parse_typed(engine::Problem problem, const std::string& text,
                 std::shared_ptr<const CdAt>* det,
                 std::shared_ptr<const CdpAt>* prob) {
  // Same phase name as the service's own text-parse path: on the API
  // route the dispatcher parses (to classify failures), not the service.
  obs::SpanScope span("service.parse");
  ParsedModel parsed = parse_model(text);
  if (engine::is_probabilistic(problem)) {
    auto m = std::make_shared<CdpAt>();
    m->tree = std::move(parsed.tree);
    m->cost = std::move(parsed.cost);
    m->damage = std::move(parsed.damage);
    m->prob = std::move(parsed.prob);
    m->validate();
    *prob = std::move(m);
  } else {
    auto m = std::make_shared<CdAt>();
    m->tree = std::move(parsed.tree);
    m->cost = std::move(parsed.cost);
    m->damage = std::move(parsed.damage);
    m->validate();
    *det = std::move(m);
  }
}

}  // namespace

namespace {

/// Wire names by Operation alternative index, for the per-op histogram
/// names; must stay aligned with the variant (op_name() agrees).
constexpr const char* kOpNames[] = {
    "solve",  "batch",       "open",      "edit",  "resolve", "close",
    "sweep",  "sensitivity", "portfolio", "stats", "metrics", "quit",
    "snapshot-save", "snapshot-load"};
static_assert(sizeof(kOpNames) / sizeof(kOpNames[0]) ==
                  std::variant_size_v<Operation>,
              "kOpNames must cover every Operation alternative");

}  // namespace

Dispatcher::Dispatcher() : Dispatcher(Options{}) {}

Dispatcher::Dispatcher(Options options)
    : slow_request_micros_(options.slow_request_micros),
      record_(options.record_metrics),
      trace_dir_(std::move(options.trace_dir)),
      trace_max_files_(options.trace_max_files) {
  if (options.metrics) {
    metrics_ = options.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::Registry>();
    metrics_ = owned_metrics_.get();
  }
  // One registry per stack: the service and both caches instrument the
  // same home the dispatcher exposes through the `metrics` op.
  options.service.metrics = metrics_;
  owned_service_ =
      std::make_unique<service::SolveService>(std::move(options.service));
  owned_sessions_ = std::make_unique<service::SessionManager>();
  service_ = owned_service_.get();
  sessions_ = owned_sessions_.get();
  init_instruments();
}

Dispatcher::Dispatcher(service::SolveService& service,
                       service::SessionManager* sessions)
    : metrics_(&service.metrics()), service_(&service), sessions_(sessions) {
  if (!sessions_) {
    owned_sessions_ = std::make_unique<service::SessionManager>();
    sessions_ = owned_sessions_.get();
  }
  init_instruments();
}

void Dispatcher::init_instruments() {
  requests_ = &metrics_->counter("atcd_api_requests_total");
  solves_ = &metrics_->counter("atcd_api_solves_total");
  batches_ = &metrics_->counter("atcd_api_batches_total");
  session_opens_ = &metrics_->counter("atcd_api_session_opens_total");
  session_edits_ = &metrics_->counter("atcd_api_session_edits_total");
  session_resolves_ = &metrics_->counter("atcd_api_session_resolves_total");
  session_closes_ = &metrics_->counter("atcd_api_session_closes_total");
  analyses_ = &metrics_->counter("atcd_api_analyses_total");
  errors_ = &metrics_->counter("atcd_api_errors_total");
  persist_saves_ = &metrics_->counter("atcd_persist_saves_total");
  persist_loads_ = &metrics_->counter("atcd_persist_loads_total");
  persist_save_errors_ = &metrics_->counter("atcd_persist_save_errors_total");
  persist_load_errors_ = &metrics_->counter("atcd_persist_load_errors_total");
  request_micros_ = &metrics_->histogram("atcd_api_request_micros");
  for (std::size_t i = 0; i < op_micros_.size(); ++i)
    op_micros_[i] = &metrics_->histogram(
        std::string("atcd_api_request_micros_") + kOpNames[i]);
}

void Dispatcher::refresh_gauges() const {
  const auto c = service_->cache().stats();
  metrics_->gauge("atcd_result_cache_entries")
      .set(static_cast<double>(c.entries));
  metrics_->gauge("atcd_result_cache_bytes").set(static_cast<double>(c.bytes));
  const auto sc = service_->subtree_cache().stats();
  metrics_->gauge("atcd_subtree_cache_entries")
      .set(static_cast<double>(sc.entries));
  metrics_->gauge("atcd_subtree_cache_bytes")
      .set(static_cast<double>(sc.bytes));
  metrics_->gauge("atcd_sessions_active")
      .set(static_cast<double>(sessions_->size()));
  // Warm-restart health: size of the last snapshot image touched and
  // its age.  Both stay 0 until a save or load happens.
  const std::uint64_t snap_bytes =
      last_snapshot_bytes_.load(std::memory_order_relaxed);
  const std::uint64_t snap_unix =
      last_snapshot_unix_.load(std::memory_order_relaxed);
  metrics_->gauge("atcd_persist_snapshot_bytes")
      .set(static_cast<double>(snap_bytes));
  double age = 0.0;
  if (snap_unix != 0) {
    const auto now = std::chrono::duration_cast<std::chrono::seconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
    age = std::max(0.0, static_cast<double>(now) -
                            static_cast<double>(snap_unix));
  }
  metrics_->gauge("atcd_persist_snapshot_age_seconds").set(age);
}

MetricsPayload Dispatcher::metrics_payload() const {
  refresh_gauges();
  MetricsPayload p;
  p.json = metrics_->to_json();
  p.text = metrics_->to_prometheus();
  return p;
}

DispatchCounters Dispatcher::counters() const {
  DispatchCounters c;
  c.requests = requests_->value();
  c.solves = solves_->value();
  c.batches = batches_->value();
  c.session_opens = session_opens_->value();
  c.session_edits = session_edits_->value();
  c.session_resolves = session_resolves_->value();
  c.session_closes = session_closes_->value();
  c.analyses = analyses_->value();
  c.errors = errors_->value();
  return c;
}

StatsPayload Dispatcher::stats() const {
  StatsPayload s;
  s.cache = service_->cache().stats();
  s.subtree = service_->subtree_cache().stats();
  s.sessions = sessions_->size();
  s.api = counters();
  s.latency.count = request_micros_->count();
  s.latency.sum_micros = request_micros_->sum();
  s.latency.p50 = request_micros_->percentile(0.50);
  s.latency.p95 = request_micros_->percentile(0.95);
  s.latency.p99 = request_micros_->percentile(0.99);
  s.persist.saves = persist_saves_->value();
  s.persist.loads = persist_loads_->value();
  s.persist.save_errors = persist_save_errors_->value();
  s.persist.load_errors = persist_load_errors_->value();
  s.persist.snapshot_bytes =
      last_snapshot_bytes_.load(std::memory_order_relaxed);
  return s;
}

/// Checks an explicit engine name against the service's registry so a
/// typo is an InvalidArgument, not a downstream solver failure.
namespace {
void check_engine(const service::SolveService& svc,
                  const std::string& engine_name) {
  if (engine_name.empty()) return;
  const engine::Registry* reg = svc.options().batch.registry
                                    ? svc.options().batch.registry
                                    : &engine::default_registry();
  if (!reg->find(engine_name))
    raise(ErrorCode::InvalidArgument,
          "unknown engine '" + engine_name + "' (see the engines listing)");
}
}  // namespace

namespace {

/// Semantic argument validation shared by every transport.  The wire
/// codecs are stricter (they reject non-finite bounds outright); the
/// dispatcher enforces the invariants that would otherwise produce
/// garbage results, so CLI and programmatic api::Request callers
/// cannot drift from the wire transports.  NaN is always rejected;
/// +/-infinity stays legal for solve bounds (an unbounded budget is a
/// meaningful DgC instance, and the cache simply declines such keys).
void check_bound(double bound, bool has_bound) {
  if (has_bound && std::isnan(bound))
    raise(ErrorCode::InvalidArgument, "bad bound (must not be NaN)");
}

}  // namespace

BatchPayload::Item Dispatcher::solve_item(const SolveSpec& spec) {
  BatchPayload::Item item;
  try {
    check_engine(*service_, spec.engine);
    check_bound(spec.bound, spec.has_bound);
    service::Request sreq;
    sreq.problem = spec.problem;
    sreq.bound = spec.bound;
    sreq.engine_name = spec.engine;
    parse_typed(spec.problem, spec.model, &sreq.det, &sreq.prob);
    const service::Response r = service_->handle(sreq);
    if (!r.result.ok) {
      item.code = ErrorCode::SolverFailure;
      item.error = r.result.error;
      return item;
    }
    item.solve = payload_of(r);
  } catch (const Failure& f) {
    item.code = f.code;
    item.error = f.message;
  } catch (const std::exception& e) {
    item.code = classify(e);
    item.error = e.what();
  }
  return item;
}

/// The visitor body of dispatch_op.  Handlers either return a Payload
/// or throw Failure / a library exception; the caller turns both into
/// typed error responses.
struct OperationHandler {
  Dispatcher& d;

  Payload operator()(const SolveRequest& r) {
    d.solves_->add(1);
    BatchPayload::Item item = d.solve_item(r.spec);
    if (item.code != ErrorCode::Ok) raise(item.code, std::move(item.error));
    return std::move(item.solve);
  }

  Payload operator()(const BatchRequest& r) {
    d.batches_->add(1);
    d.solves_->add(r.items.size());
    BatchPayload out;
    out.items.resize(r.items.size());
    const std::size_t n = r.items.size();
    std::size_t threads =
        r.threads ? r.threads : std::thread::hardware_concurrency();
    threads = std::max<std::size_t>(1, std::min(threads, n));
    if (threads <= 1) {
      for (std::size_t i = 0; i < n; ++i)
        out.items[i] = d.solve_item(r.items[i]);
    } else {
      std::atomic<std::size_t> next{0};
      const auto worker = [&] {
        for (std::size_t i = next.fetch_add(1); i < n;
             i = next.fetch_add(1))
          out.items[i] = d.solve_item(r.items[i]);
      };
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
      for (auto& th : pool) th.join();
    }
    return out;
  }

  Payload operator()(const SessionOpenRequest& r) {
    d.session_opens_->add(1);
    check_engine(*d.service_, r.spec.engine);
    check_bound(r.spec.bound, r.spec.has_bound);
    service::Session::Options sopt;
    sopt.problem = r.spec.problem;
    sopt.bound = r.spec.bound;
    sopt.engine_name = r.spec.engine;
    sopt.batch = d.service_->options().batch;
    sopt.shared = d.service_->shared_subtree_cache();
    sopt.metrics = d.metrics_;
    const std::uint64_t id = d.sessions_->open(
        std::make_unique<service::Session>(r.spec.model, std::move(sopt)));
    return SessionOpenedPayload{id};
  }

  Payload operator()(const SessionEditRequest& r) {
    d.session_edits_->add(1);
    const auto session = d.sessions_->find(r.session);
    if (!session)
      raise(ErrorCode::NoSuchSession,
            "no session " + std::to_string(r.session));
    std::string err;
    switch (r.op) {
      case EditOp::SetCost: err = session->set_cost(r.target, r.value); break;
      case EditOp::SetProb: err = session->set_prob(r.target, r.value); break;
      case EditOp::SetDamage:
        err = session->set_damage(r.target, r.value);
        break;
      case EditOp::ToggleDefense:
        err = session->toggle_defense(r.target);
        break;
      case EditOp::ReplaceSubtree:
        err = session->replace_subtree(r.target, r.model);
        break;
    }
    if (!err.empty()) raise(ErrorCode::InvalidArgument, std::move(err));
    return EditAppliedPayload{};
  }

  Payload operator()(const SessionResolveRequest& r) {
    d.session_resolves_->add(1);
    d.solves_->add(1);
    const auto session = d.sessions_->find(r.session);
    if (!session)
      raise(ErrorCode::NoSuchSession,
            "no session " + std::to_string(r.session));
    const service::Response resp = session->resolve();
    if (!resp.result.ok)
      raise(ErrorCode::SolverFailure, resp.result.error);
    return payload_of(resp);
  }

  Payload operator()(const SessionCloseRequest& r) {
    d.session_closes_->add(1);
    if (!d.sessions_->close(r.session))
      raise(ErrorCode::NoSuchSession,
            "no session " + std::to_string(r.session));
    return SessionClosedPayload{};
  }

  /// Shared analysis knobs.  aopt.batch.cache is the stats-drift fix:
  /// analysis fan-outs consult and feed the same result cache the solve
  /// path serves from, so `stats` reflects every protocol path.
  analysis::Options analysis_options(engine::Problem problem, double bound,
                                     const std::string& engine_name) {
    check_engine(*d.service_, engine_name);
    analysis::Options aopt;
    aopt.problem = problem;
    aopt.bound = bound;
    aopt.engine_name = engine_name;
    aopt.batch = d.service_->options().batch;
    if (d.service_->options().enable_cache)
      aopt.batch.cache = &d.service_->cache();
    aopt.shared = d.service_->shared_subtree_cache();
    return aopt;
  }

  Payload operator()(const AnalyzeSweepRequest& r) {
    d.analyses_->add(1);
    if (r.axes.empty())
      raise(ErrorCode::InvalidArgument,
            "analyze sweep needs at least one axis=<spec>");
    check_bound(r.bound, r.has_bound);
    std::vector<analysis::Axis> axes;
    for (const std::string& spec : r.axes) {
      std::string err;
      const auto axis = analysis::parse_axis(spec, &err);
      if (!axis) raise(ErrorCode::InvalidArgument, std::move(err));
      axes.push_back(*axis);
    }
    const analysis::Options aopt =
        analysis_options(r.problem, r.has_bound ? r.bound : 0.0, r.engine);
    std::shared_ptr<const CdAt> det;
    std::shared_ptr<const CdpAt> prob;
    parse_typed(r.problem, r.model, &det, &prob);
    const std::string table =
        det ? analysis::to_table(analysis::sweep(*det, axes, aopt))
            : analysis::to_table(analysis::sweep(*prob, axes, aopt));
    return AnalysisPayload{"sweep", table};
  }

  Payload operator()(const AnalyzeSensitivityRequest& r) {
    d.analyses_->add(1);
    if (!engine::is_front(r.problem))
      raise(ErrorCode::InvalidArgument,
            "analyze sensitivity takes a front problem (cdpf or cedpf)");
    if (r.has_step && !(std::isfinite(r.step) && r.step > 0.0))
      raise(ErrorCode::InvalidArgument, "bad step (must be > 0)");
    analysis::Options aopt = analysis_options(r.problem, 0.0, r.engine);
    if (r.has_step) aopt.sensitivity_step = r.step;
    std::shared_ptr<const CdAt> det;
    std::shared_ptr<const CdpAt> prob;
    parse_typed(r.problem, r.model, &det, &prob);
    const std::string table =
        det ? analysis::to_table(analysis::sensitivity(*det, aopt))
            : analysis::to_table(analysis::sensitivity(*prob, aopt));
    return AnalysisPayload{"sensitivity", table};
  }

  Payload operator()(const AnalyzePortfolioRequest& r) {
    d.analyses_->add(1);
    if (r.problem != engine::Problem::Dgc &&
        r.problem != engine::Problem::Edgc)
      raise(ErrorCode::InvalidArgument, "analyze portfolio takes dgc or edgc");
    if (r.defenses.empty())
      raise(ErrorCode::InvalidArgument,
            "analyze portfolio needs at least one "
            "defense=<name>:<cost>:<bas>");
    // A +infinity budget equals an absent one (unbounded defender);
    // NaN or negative budgets are rejected, never silently clamped.
    if (r.has_budget && !(r.budget >= 0.0))
      raise(ErrorCode::InvalidArgument, "bad budget (must be >= 0)");
    check_bound(r.bound, r.has_bound);
    std::vector<defense::Countermeasure> catalogue;
    for (const std::string& spec : r.defenses) {
      std::string err;
      const auto cm = analysis::parse_countermeasure(spec, &err);
      if (!cm) raise(ErrorCode::InvalidArgument, std::move(err));
      catalogue.push_back(*cm);
    }
    const double budget =
        r.has_budget ? r.budget : std::numeric_limits<double>::infinity();
    // An unbounded attacker is the portfolio default; the clamp to the
    // hardening scale happens inside portfolio().
    const double bound =
        r.has_bound ? r.bound : std::numeric_limits<double>::infinity();
    const analysis::Options aopt =
        analysis_options(r.problem, bound, r.engine);
    std::shared_ptr<const CdAt> det;
    std::shared_ptr<const CdpAt> prob;
    parse_typed(r.problem, r.model, &det, &prob);
    const std::string table =
        det ? analysis::to_table(
                  analysis::portfolio(*det, catalogue, budget, aopt))
            : analysis::to_table(
                  analysis::portfolio(*prob, catalogue, budget, aopt));
    return AnalysisPayload{"portfolio", table};
  }

  Payload operator()(const StatsRequest&) { return d.stats(); }

  Payload operator()(const MetricsRequest&) { return d.metrics_payload(); }

  Payload operator()(const ShutdownRequest&) {
    // The serving loop fills in its per-connection handled count.
    return ShutdownPayload{0};
  }

  /// Stamps the "last snapshot touched" gauges after a save or load.
  void note_snapshot(const persist::SnapshotInfo& info) {
    d.last_snapshot_bytes_.store(static_cast<std::uint64_t>(info.bytes),
                                 std::memory_order_relaxed);
    const auto now = std::chrono::duration_cast<std::chrono::seconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
    d.last_snapshot_unix_.store(static_cast<std::uint64_t>(now),
                                std::memory_order_relaxed);
  }

  Payload operator()(const SnapshotSaveRequest& r) {
    persist::SnapshotInfo info;
    std::string err;
    if (!persist::save_snapshot(r.path, d.service_->cache(),
                                d.service_->subtree_cache(), &info, &err)) {
      d.persist_save_errors_->add(1);
      raise(ErrorCode::PersistError, std::move(err));
    }
    d.persist_saves_->add(1);
    note_snapshot(info);
    return SnapshotPayload{"save", r.path, info.result_entries,
                           info.subtree_entries, info.bytes};
  }

  Payload operator()(const SnapshotLoadRequest& r) {
    persist::SnapshotInfo info;
    std::string err;
    const persist::LoadStatus status = persist::load_snapshot(
        r.path, &d.service_->cache(), &d.service_->subtree_cache(), &info,
        &err);
    if (status != persist::LoadStatus::Ok) {
      d.persist_load_errors_->add(1);
      std::string message = persist::to_string(status);
      if (!err.empty()) message += ": " + err;
      raise(ErrorCode::PersistError, std::move(message));
    }
    d.persist_loads_->add(1);
    note_snapshot(info);
    return SnapshotPayload{"load", r.path, info.result_entries,
                           info.subtree_entries, info.bytes};
  }
};

Response Dispatcher::dispatch_op(const Request& request) {
  Response resp;
  resp.id = request.id;
  try {
    OperationHandler handler{*this};
    resp.payload = std::visit(handler, request.op);
  } catch (const Failure& f) {
    resp.code = f.code;
    resp.error = f.message;
  } catch (const std::exception& e) {
    resp.code = classify(e);
    resp.error = e.what();
  } catch (...) {
    resp.code = ErrorCode::Internal;
    resp.error = "unknown exception";
  }
  return resp;
}

Response Dispatcher::dispatch(const Request& request) {
  const auto t0 = service::detail::Clock::now();
  if (record_) requests_->add(1);
  Response resp;
  // trace_dir mode traces every request internally (for slow-request
  // export); only `"trace": true` requests get the trace echoed on the
  // response, so the wire bytes are unchanged by sampling.
  const bool traced = request.trace || !trace_dir_.empty();
  std::optional<obs::Trace> trace;
  if (traced) {
    // Activate a span context for this request only; downstream layers
    // record into it through the thread-local slot, so the untraced
    // path stays untouched (and byte-identical) at any thread count.
    trace.emplace();
    {
      obs::TraceActivation activation(&*trace);
      obs::SpanScope span("dispatch");
      resp = dispatch_op(request);
    }
    if (request.trace) {
      TracePayload tp;
      tp.spans.reserve(trace->spans().size());
      for (const obs::Trace::Span& s : trace->spans())
        tp.spans.push_back({s.name, s.depth, s.start_us, s.dur_us});
      tp.facts = trace->facts();
      resp.trace = std::move(tp);
    }
  } else {
    resp = dispatch_op(request);
  }
  if (record_ && resp.code != ErrorCode::Ok) errors_->add(1);
  resp.micros = service::detail::micros_since(t0);
  const bool slow =
      slow_request_micros_ > 0.0 && resp.micros >= slow_request_micros_;
  if (record_) {
    const auto us = static_cast<std::uint64_t>(resp.micros);
    request_micros_->record(us);
    op_micros_[request.op.index()]->record(us);
    if (slow)
      std::fprintf(stderr,
                   "{\"event\": \"slow_request\", \"op\": %s, \"id\": %s, "
                   "\"code\": %s, \"micros\": %s}\n",
                   json::dump_string(op_name(request.op)).c_str(),
                   json::dump_string(request.id).c_str(),
                   json::dump_string(to_string(resp.code)).c_str(),
                   json::dump_number(resp.micros).c_str());
  }
  if (!trace_dir_.empty() && (slow || slow_request_micros_ <= 0.0))
    export_trace(request, resp, *trace);
  return resp;
}

void Dispatcher::export_trace(const Request& request, const Response& response,
                              const obs::Trace& trace) {
  if (trace_seq_.load(std::memory_order_relaxed) >= trace_max_files_) return;
  const std::uint64_t seq =
      trace_seq_.fetch_add(1, std::memory_order_relaxed);
  if (seq >= trace_max_files_) return;
  const std::string path = trace_dir_ + "/atcd_trace_" + std::to_string(seq) +
                           "_" + op_name(request.op) + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return;  // sampling is best-effort; serving never fails on it
  const std::string label = std::string("atcd ") + op_name(request.op) +
                            " (" + to_string(response.code) + ")";
  const std::string body = obs::chrome_trace_json(trace, label);
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

}  // namespace atcd::api
