#pragma once
/// \file server.hpp
/// JSON-lines serving loop over the dispatcher.
///
/// One request per input line in the v1 envelope
/// (`{"v":1,"id":...,"op":...}`), one response per output line.  With
/// `threads > 1` requests are *pipelined*: a pool of workers dispatches
/// them concurrently and responses are written as they complete —
/// possibly out of order — which is why the envelope carries
/// client-supplied request ids.  Responses to *distinct* requests are
/// byte-independent of the thread count (timing is omitted unless
/// `timing` is set), so sorting them by id yields byte-identical
/// output for any `threads` value; tests/test_api.cpp pins this.  The
/// one scheduling-dependent byte is the "cache" member of *identical*
/// concurrent requests: whether the second of two equal solves reads
/// "hit" or "coalesced" depends on whether it arrived before or after
/// the first completed — the payload values are identical either way.
///
/// The loop ends on EOF or on a `{"op":"quit"}` request; either way the
/// last line written is a structured shutdown response (kind=shutdown,
/// echoing the quit's id when there was one) after all in-flight
/// requests have drained — no silent exits.
///
/// Blank lines and lines starting with '#' are skipped, so the same
/// script files that drive the line protocol can carry JSON sessions.

#include <cstddef>
#include <iosfwd>

#include "api/dispatcher.hpp"

namespace atcd::api {

struct JsonServeOptions {
  /// Worker threads dispatching requests concurrently; 0 or 1 serves
  /// synchronously in arrival order.
  std::size_t threads = 0;
  /// Include per-response wall micros.  Off by default so responses
  /// are byte-identical across runs and thread counts.
  bool timing = false;
};

/// Serves JSON-envelope requests from \p in to \p out until EOF or
/// `quit`.  Returns the number of solve/resolve/analyze requests
/// handled (same accounting as the line-protocol serve()).
std::size_t serve_json(std::istream& in, std::ostream& out,
                       Dispatcher& dispatcher,
                       const JsonServeOptions& options = {});

}  // namespace atcd::api
