#pragma once
/// \file server.hpp
/// Transport-agnostic JSON-lines serving core, plus the stdin/stdout
/// front-end it was extracted from.
///
/// One request per input line in the v1 envelope
/// (`{"v":1,"id":...,"op":...}`), one response per output line.  With
/// `threads > 1` requests are *pipelined*: a pool of workers dispatches
/// them concurrently and responses are written as they complete —
/// possibly out of order — which is why the envelope carries
/// client-supplied request ids.  Responses to *distinct* requests are
/// byte-independent of the thread count (timing is omitted unless
/// `timing` is set), so sorting them by id yields byte-identical
/// output for any `threads` value; tests/test_api.cpp pins this.  The
/// one scheduling-dependent byte is the "cache" member of *identical*
/// concurrent requests: whether the second of two equal solves reads
/// "hit" or "coalesced" depends on whether it arrived before or after
/// the first completed — the payload values are identical either way.
///
/// The loop ends on EOF or on a `{"op":"quit"}` request; either way the
/// last line written is a structured shutdown response (kind=shutdown,
/// echoing the quit's id when there was one) after all in-flight
/// requests have drained — no silent exits.
///
/// Robustness guarantees (each pinned by a regression test):
///
///  * The pipelining queue is *bounded* (`max_queue`, default twice the
///    worker count): a client that writes faster than the workers drain
///    blocks the reader instead of ballooning server memory.  On a
///    socket transport the block propagates as TCP backpressure.
///  * Input lines are length-capped (`max_line_bytes`): an oversized
///    line is discarded *as it streams in* — never buffered whole — and
///    answered with a typed `capacity` error, after which the loop
///    keeps serving.
///  * Write failures are detected: when the output sink dies (closed
///    socket, broken pipe) the loop stops reading and dispatching
///    instead of solving for nobody, and the failure is counted in the
///    `atcd_net_write_errors_total` registry counter.
///
/// The core loop (serve_lines) speaks to the transport through the
/// two-method LineTransport interface, so the stdin pipe, the TCP
/// server, and the HTTP endpoint (src/net/) all run exactly the same
/// serving code — same pipelining, same caps, same shutdown semantics.
///
/// Blank lines and lines starting with '#' are skipped, so the same
/// script files that drive the line protocol can carry JSON sessions.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "api/dispatcher.hpp"

namespace atcd::api {

struct JsonServeOptions {
  /// Worker threads dispatching requests concurrently; 0 or 1 serves
  /// synchronously in arrival order.
  std::size_t threads = 0;
  /// Include per-response wall micros.  Off by default so responses
  /// are byte-identical across runs and thread counts.
  bool timing = false;
  /// Pending-request cap for the pipelined queue; the reader blocks
  /// (backpressure) once this many requests await a worker.  0 picks
  /// the default: twice the worker count.
  std::size_t max_queue = 0;
  /// Longest accepted input line in bytes.  Longer lines are discarded
  /// without full buffering and answered with a typed `capacity` error.
  std::size_t max_line_bytes = 1u << 20;  // 1 MiB
};

/// The serving core's view of a connection: bounded line reads in,
/// whole-line writes out.  Implementations exist for iostreams (below),
/// TCP sockets, and HTTP connections (src/net/).
class LineTransport {
 public:
  enum class ReadStatus {
    Line,     ///< a complete line (without its terminator) was read
    TooLong,  ///< a line exceeded max_bytes; its bytes were discarded
    Eof,      ///< no more input (EOF, peer close, or read error)
  };

  virtual ~LineTransport() = default;

  /// Reads the next line into \p line, accepting at most \p max_bytes
  /// payload bytes.  An overlong line must be *discarded as it streams
  /// in* — never accumulated whole — and reported as TooLong exactly
  /// once.  A partial line at EOF is returned as a Line; the next call
  /// reports Eof.
  virtual ReadStatus read_line(std::string& line, std::size_t max_bytes) = 0;

  /// Writes \p line plus a terminating newline and flushes.  Returns
  /// false when the sink has failed (broken pipe, closed socket); the
  /// serving loop then stops reading and dispatching.
  virtual bool write_line(const std::string& line) = 0;
};

/// LineTransport over a std::istream / std::ostream pair — the stdin
/// transport, and the test seam for the serving core.
class IoStreamTransport final : public LineTransport {
 public:
  IoStreamTransport(std::istream& in, std::ostream& out) : in_(in), out_(out) {}
  ReadStatus read_line(std::string& line, std::size_t max_bytes) override;
  bool write_line(const std::string& line) override;

 private:
  std::istream& in_;
  std::ostream& out_;
  std::vector<char> buf_;
};

/// The transport-agnostic serving core: reads envelope lines from \p t,
/// dispatches (pipelined when options.threads > 1), writes responses
/// back, and always finishes with the structured shutdown response.
/// Returns the number of solve/resolve/analyze requests handled.
std::size_t serve_lines(LineTransport& t, Dispatcher& dispatcher,
                        const JsonServeOptions& options = {});

/// Serves JSON-envelope requests from \p in to \p out until EOF or
/// `quit` — serve_lines over an IoStreamTransport.  Returns the number
/// of solve/resolve/analyze requests handled (same accounting as the
/// line-protocol serve()).
std::size_t serve_json(std::istream& in, std::ostream& out,
                       Dispatcher& dispatcher,
                       const JsonServeOptions& options = {});

}  // namespace atcd::api
