#pragma once
/// \file metrics.hpp
/// Classic single-valued attack-tree metrics, for context around the
/// paper's cost-damage analysis (its Related Work surveys them: min cost
/// [25], bottom-up single metrics [12], success probability [36]).
///
/// These are the metrics that DO admit a simple bottom-up evaluation on
/// treelike ATs, because a *single* semiring value per node suffices —
/// precisely what fails for cost-damage (the paper's Sec. VI shows a full
/// triple front must be propagated).  Keeping them side by side makes
/// the contrast concrete, and the library useful for routine AT work:
///
///   metric           | OR    | AND   | BAS value      | restriction
///   min_attack_cost  | min   | +     | c(v)           | none (tree); BDD for DAG
///   min_attack_skill | min   | max   | skill(v)       | treelike
///   max_success_prob | max   | *     | p(v)           | treelike
///   all_in_success_p | p⋆q   | *     | p(v)           | treelike (all BASs attempted)
///
/// All functions reject DAG input (UnsupportedError) unless stated —
/// bottom-up double-counts shared subtrees, the same failure mode the
/// paper handles with BILP.  min_cost_of_successful_attack() in
/// bdd/at_bdd.hpp is the DAG-safe alternative for min cost.

#include <vector>

#include "core/cdat.hpp"

namespace atcd::metrics {

/// Minimal total BAS cost over successful attacks (root reached);
/// +infinity if the root is unreachable (cannot happen on valid ATs).
/// Treelike only.
double min_attack_cost(const CdAt& m);

/// Minimal "maximum skill along the attack" over successful attacks:
/// OR = min, AND = max.  \p skill indexed by BAS index.  Treelike only.
double min_attack_skill(const AttackTree& t, const std::vector<double>& skill);

/// Maximal probability that a *single-path* attack succeeds: the best
/// choice at every OR gate, product at AND gates.  Treelike only.
double max_success_probability(const CdpAt& m);

/// Probability the root is reached when every BAS is attempted.
/// Treelike only (use root_reach_probability_all_in() from bdd/at_bdd.hpp
/// for DAGs).
double all_in_success_probability(const CdpAt& m);

}  // namespace atcd::metrics
