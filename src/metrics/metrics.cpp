#include "metrics/metrics.hpp"

#include <algorithm>
#include <limits>

namespace atcd::metrics {
namespace {

void require_treelike(const AttackTree& t, const char* who) {
  if (!t.finalized()) throw ModelError(std::string(who) + ": not finalized");
  if (!t.is_treelike())
    throw UnsupportedError(std::string(who) +
                           ": bottom-up single-metric evaluation is unsound "
                           "on DAGs (shared subtrees are double-counted)");
}

/// Generic semiring sweep: leaf(v) gives BAS values; combine_or /
/// combine_and fold child values.
template <typename Leaf, typename Or, typename And>
double sweep(const AttackTree& t, Leaf leaf, Or combine_or, And combine_and) {
  std::vector<double> val(t.node_count(), 0.0);
  for (NodeId v : t.topological_order()) {
    const auto& n = t.node(v);
    if (n.type == NodeType::BAS) {
      val[v] = leaf(n.bas_index);
    } else {
      double acc = val[n.children[0]];
      for (std::size_t i = 1; i < n.children.size(); ++i)
        acc = n.type == NodeType::OR ? combine_or(acc, val[n.children[i]])
                                     : combine_and(acc, val[n.children[i]]);
      val[v] = acc;
    }
  }
  return val[t.root()];
}

}  // namespace

double min_attack_cost(const CdAt& m) {
  m.validate();
  require_treelike(m.tree, "min_attack_cost");
  return sweep(
      m.tree, [&](std::uint32_t i) { return m.cost[i]; },
      [](double a, double b) { return std::min(a, b); },
      [](double a, double b) { return a + b; });
}

double min_attack_skill(const AttackTree& t,
                        const std::vector<double>& skill) {
  require_treelike(t, "min_attack_skill");
  if (skill.size() != t.bas_count())
    throw ModelError("min_attack_skill: skill vector size mismatch");
  return sweep(
      t, [&](std::uint32_t i) { return skill[i]; },
      [](double a, double b) { return std::min(a, b); },
      [](double a, double b) { return std::max(a, b); });
}

double max_success_probability(const CdpAt& m) {
  m.validate();
  require_treelike(m.tree, "max_success_probability");
  return sweep(
      m.tree, [&](std::uint32_t i) { return m.prob[i]; },
      [](double a, double b) { return std::max(a, b); },
      [](double a, double b) { return a * b; });
}

double all_in_success_probability(const CdpAt& m) {
  m.validate();
  require_treelike(m.tree, "all_in_success_probability");
  return sweep(
      m.tree, [&](std::uint32_t i) { return m.prob[i]; },
      [](double a, double b) { return a + b - a * b; },
      [](double a, double b) { return a * b; });
}

}  // namespace atcd::metrics
