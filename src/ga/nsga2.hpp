#pragma once
/// \file nsga2.hpp
/// NSGA-II [31] approximation of the cost-damage Pareto front.
///
/// The paper's conclusion proposes comparing its provably optimal methods
/// against a genetic multi-objective optimizer; this module provides that
/// comparator (exercised by bench/ablation_nsga2_vs_exact).  Individuals
/// are attacks (bit vectors over the BASs); objectives are
/// (ĉ(x), −d̂(x)) (or expected damage).  Standard NSGA-II machinery:
/// fast nondominated sorting, crowding distance, binary tournament,
/// uniform crossover, per-bit mutation, plus an external archive so the
/// returned front never degrades across generations.
///
/// The result is an *approximation*: every returned point is attainable
/// (witnesses are real attacks) but the front may be incomplete or
/// dominated by the exact front.

#include <cstdint>
#include <functional>

#include "core/cdat.hpp"
#include "pareto/front2d.hpp"

namespace atcd::ga {

struct Nsga2Options {
  std::size_t population = 80;
  std::size_t generations = 60;
  double crossover_rate = 0.9;
  /// Per-bit mutation probability; <= 0 means 1/|B|.
  double mutation_rate = -1.0;
  std::uint64_t seed = 0xA7C0DD;
};

/// Approximates CDPF of a deterministic model.
Front2d nsga2_cdpf(const CdAt& m, const Nsga2Options& opt = {});

/// Approximates CEDPF of a treelike probabilistic model.
Front2d nsga2_cedpf(const CdpAt& m, const Nsga2Options& opt = {});

/// Generic entry point: any evaluation function attack -> (cost, damage).
Front2d nsga2_front(std::size_t num_bas,
                    const std::function<CdPoint(const Attack&)>& evaluate,
                    const Nsga2Options& opt);

/// Quality indicators for comparing an approximation against the exact
/// front (used by the ablation bench).

/// Fraction of exact-front points matched exactly (same cost & damage
/// within tol) by the approximation.
double front_coverage(const Front2d& exact, const Front2d& approx,
                      double tol = 1e-9);

/// 2-D hypervolume dominated by the front w.r.t. a reference point
/// (ref_cost >= all costs, ref_damage <= all damages; damage is maximized
/// so the volume is Σ over steps of (Δcost · (damage - ref_damage))).
double hypervolume(const Front2d& front, double ref_cost, double ref_damage);

}  // namespace atcd::ga
