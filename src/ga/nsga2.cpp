#include "ga/nsga2.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace atcd::ga {
namespace {

struct Individual {
  Attack genes;
  CdPoint value;        // (cost, damage); damage maximized
  std::size_t rank = 0;
  double crowding = 0.0;
};

/// a Pareto-dominates b (min cost, max damage).
bool dom(const Individual& a, const Individual& b) {
  return dominates(a.value, b.value);
}

/// Fast nondominated sorting; fills ranks and returns the fronts.
std::vector<std::vector<std::size_t>> sort_fronts(
    std::vector<Individual>& pop) {
  const std::size_t n = pop.size();
  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<std::size_t> count(n, 0);
  std::vector<std::vector<std::size_t>> fronts(1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (dom(pop[i], pop[j]))
        dominated_by[i].push_back(j);
      else if (dom(pop[j], pop[i]))
        ++count[i];
    }
    if (count[i] == 0) {
      pop[i].rank = 0;
      fronts[0].push_back(i);
    }
  }
  std::size_t k = 0;
  while (!fronts[k].empty()) {
    std::vector<std::size_t> next;
    for (std::size_t i : fronts[k]) {
      for (std::size_t j : dominated_by[i]) {
        if (--count[j] == 0) {
          pop[j].rank = k + 1;
          next.push_back(j);
        }
      }
    }
    fronts.push_back(std::move(next));
    ++k;
  }
  fronts.pop_back();  // last one is empty
  return fronts;
}

void assign_crowding(std::vector<Individual>& pop,
                     const std::vector<std::size_t>& front) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  for (std::size_t i : front) pop[i].crowding = 0.0;
  if (front.size() <= 2) {
    for (std::size_t i : front) pop[i].crowding = inf;
    return;
  }
  // Objective 1: cost (min).  Objective 2: damage (max) — same sweep.
  for (int obj = 0; obj < 2; ++obj) {
    auto key = [obj](const Individual& ind) {
      return obj == 0 ? ind.value.cost : ind.value.damage;
    };
    std::vector<std::size_t> order = front;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return key(pop[a]) < key(pop[b]);
    });
    const double span = key(pop[order.back()]) - key(pop[order.front()]);
    pop[order.front()].crowding = inf;
    pop[order.back()].crowding = inf;
    if (span <= 0.0) continue;
    for (std::size_t k = 1; k + 1 < order.size(); ++k)
      pop[order[k]].crowding +=
          (key(pop[order[k + 1]]) - key(pop[order[k - 1]])) / span;
  }
}

/// Crowded-comparison operator of NSGA-II.
bool crowded_less(const Individual& a, const Individual& b) {
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.crowding > b.crowding;
}

}  // namespace

Front2d nsga2_front(std::size_t num_bas,
                    const std::function<CdPoint(const Attack&)>& evaluate,
                    const Nsga2Options& opt) {
  Rng rng(opt.seed);
  const double pm =
      opt.mutation_rate > 0.0
          ? opt.mutation_rate
          : 1.0 / static_cast<double>(std::max<std::size_t>(1, num_bas));
  const std::size_t pop_size = std::max<std::size_t>(4, opt.population);

  auto make_individual = [&](Attack a) {
    Individual ind;
    ind.value = evaluate(a);
    ind.genes = std::move(a);
    return ind;
  };

  // Initial population: random density per individual + the empty attack.
  std::vector<Individual> pop;
  pop.reserve(pop_size);
  pop.push_back(make_individual(Attack(num_bas)));
  while (pop.size() < pop_size) {
    const double density = rng.uniform();
    Attack a(num_bas);
    for (std::size_t i = 0; i < num_bas; ++i)
      if (rng.chance(density)) a.set(i);
    pop.push_back(make_individual(std::move(a)));
  }

  std::vector<FrontPoint> archive;
  auto archive_front = [&]() {
    return Front2d::of_candidates(archive);
  };
  auto push_archive = [&](const Individual& ind) {
    archive.push_back({ind.value, ind.genes});
  };
  for (const auto& ind : pop) push_archive(ind);
  // Keep the archive compact as it grows.
  auto compact_archive = [&]() {
    if (archive.size() > 4 * pop_size) {
      auto f = archive_front();
      archive.assign(f.points().begin(), f.points().end());
    }
  };

  auto fronts = sort_fronts(pop);
  for (const auto& f : fronts) assign_crowding(pop, f);

  for (std::size_t gen = 0; gen < opt.generations; ++gen) {
    // Binary tournaments + uniform crossover + bit mutation.
    std::vector<Individual> offspring;
    offspring.reserve(pop_size);
    auto tournament = [&]() -> const Individual& {
      const auto& a = pop[rng.below(pop.size())];
      const auto& b = pop[rng.below(pop.size())];
      return crowded_less(a, b) ? a : b;
    };
    while (offspring.size() < pop_size) {
      const Individual& p1 = tournament();
      const Individual& p2 = tournament();
      Attack child(num_bas);
      if (rng.chance(opt.crossover_rate)) {
        for (std::size_t i = 0; i < num_bas; ++i)
          child.set(i, (rng.chance(0.5) ? p1 : p2).genes.test(i));
      } else {
        child = p1.genes;
      }
      for (std::size_t i = 0; i < num_bas; ++i)
        if (rng.chance(pm)) child.set(i, !child.test(i));
      offspring.push_back(make_individual(std::move(child)));
      push_archive(offspring.back());
    }
    compact_archive();

    // Environmental selection over parents + offspring.
    for (auto& o : offspring) pop.push_back(std::move(o));
    fronts = sort_fronts(pop);
    for (const auto& f : fronts) assign_crowding(pop, f);
    std::vector<Individual> next;
    next.reserve(pop_size);
    for (const auto& f : fronts) {
      if (next.size() + f.size() <= pop_size) {
        for (std::size_t i : f) next.push_back(std::move(pop[i]));
      } else {
        std::vector<std::size_t> rest = f;
        std::sort(rest.begin(), rest.end(), [&](std::size_t a, std::size_t b) {
          return crowded_less(pop[a], pop[b]);
        });
        for (std::size_t i : rest) {
          if (next.size() >= pop_size) break;
          next.push_back(std::move(pop[i]));
        }
      }
      if (next.size() >= pop_size) break;
    }
    pop = std::move(next);
    fronts = sort_fronts(pop);
    for (const auto& f : fronts) assign_crowding(pop, f);
  }

  return archive_front();
}

Front2d nsga2_cdpf(const CdAt& m, const Nsga2Options& opt) {
  m.validate();
  return nsga2_front(
      m.tree.bas_count(),
      [&m](const Attack& x) {
        return CdPoint{total_cost(m, x), total_damage(m, x)};
      },
      opt);
}

Front2d nsga2_cedpf(const CdpAt& m, const Nsga2Options& opt) {
  m.validate();
  return nsga2_front(
      m.tree.bas_count(),
      [&m](const Attack& x) {
        return CdPoint{total_cost(m, x), expected_damage(m, x)};
      },
      opt);
}

double front_coverage(const Front2d& exact, const Front2d& approx,
                      double tol) {
  if (exact.empty()) return 1.0;
  std::size_t hit = 0;
  for (const auto& e : exact) {
    for (const auto& a : approx) {
      if (std::abs(a.value.cost - e.value.cost) <= tol &&
          std::abs(a.value.damage - e.value.damage) <= tol) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

double hypervolume(const Front2d& front, double ref_cost, double ref_damage) {
  // Points sorted by ascending cost & damage; each step [c_i, c_{i+1})
  // contributes its damage above the reference.
  double hv = 0.0;
  const auto& pts = front.points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double next_cost =
        i + 1 < pts.size() ? pts[i + 1].value.cost : ref_cost;
    const double width = std::max(0.0, std::min(next_cost, ref_cost) -
                                           pts[i].value.cost);
    const double height = std::max(0.0, pts[i].value.damage - ref_damage);
    hv += width * height;
  }
  return hv;
}

}  // namespace atcd::ga
