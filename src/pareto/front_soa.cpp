#include "pareto/front_soa.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace atcd {

namespace {

constexpr std::uint32_t words_per_attack(std::size_t nbits) {
  return static_cast<std::uint32_t>((nbits + 63) / 64);
}

}  // namespace

TripleBuf TripleBuf::from_aos(const std::vector<AttrTriple>& xs,
                              std::size_t nbits) {
  TripleBuf b(words_per_attack(nbits));
  b.reserve(xs.size());
  for (const auto& x : xs) {
    const std::size_t r = b.push_zero(x.t.cost, x.t.damage, x.t.act);
    std::uint64_t* w = b.witness(r);
    const std::size_t nw = x.witness.word_count();
    for (std::size_t k = 0; k < nw; ++k) w[k] = x.witness.word(k);
  }
  return b;
}

std::vector<AttrTriple> TripleBuf::to_aos(std::size_t nbits) const {
  std::vector<AttrTriple> xs;
  xs.reserve(size());
  for (std::size_t r = 0; r < size(); ++r) {
    AttrTriple x;
    x.t = {cost[r], damage[r], act[r]};
    x.witness = DynBitset(nbits);
    const std::uint64_t* w = witness(r);
    for (std::size_t k = 0; k < x.witness.word_count(); ++k)
      x.witness.set_word(k, w[k]);
    xs.push_back(std::move(x));
  }
  return xs;
}

void combine_soa(const TripleView& a, const TripleView& b, NodeType gate,
                 TripleBuf* out, double budget) {
  const std::uint32_t wpa = out->wpa();
  const std::size_t n = a.n * b.n;
  out->cost.resize(n);
  out->damage.resize(n);
  out->act.resize(n);
  out->wit.resize(n * wpa);
  const bool is_and = gate == NodeType::AND;
  std::size_t r = 0;
  for (std::size_t i = 0; i < a.n; ++i) {
    const double ca = a.cost[i];
    const double da = a.damage[i];
    const double pa = a.act[i];
    const std::uint64_t* wa = a.wit + i * wpa;
    for (std::size_t j = 0; j < b.n; ++j) {
      const double c = ca + b.cost[j];
      // Over-budget rows are exactly the ones prune's min_U filter drops
      // before sorting, so eliding them here — before paying the witness
      // OR — changes nothing downstream.  The surviving rows keep their
      // a-major relative order.
      if (c > budget) continue;
      out->cost[r] = c;
      out->damage[r] = da + b.damage[j];
      const double pb = b.act[j];
      out->act[r] = is_and ? pa * pb : pa + pb - pa * pb;
      std::uint64_t* w = out->wit.data() + r * wpa;
      const std::uint64_t* wb = b.wit + j * wpa;
      for (std::uint32_t k = 0; k < wpa; ++k) w[k] = wa[k] | wb[k];
      ++r;
    }
  }
  out->cost.resize(r);
  out->damage.resize(r);
  out->act.resize(r);
  out->wit.resize(r * wpa);
}

void prune_select(const TripleView& v, double budget, PruneScratch* scratch) {
  const std::size_t n = v.n;
  const double* cost = v.cost;
  const double* damage = v.damage;
  const double* act = v.act;

  // Budget filter, preserving the original order (erase_if is stable).
  auto& idx = scratch->idx;
  idx.clear();
  idx.reserve(n);
  if (budget != kNoBudget) {
    for (std::size_t i = 0; i < n; ++i)
      if (cost[i] <= budget) idx.push_back(static_cast<std::uint32_t>(i));
  } else {
    idx.resize(n);
    std::iota(idx.begin(), idx.end(), 0u);
  }

  // Same comparator as prune_min, moving u32 indices instead of triples.
  // Any stable sort yields the same permutation under the same
  // comparator, so the small-input insertion sort below is
  // output-identical to std::stable_sort — it just skips the temporary
  // buffer std::stable_sort allocates per call, which dominates on the
  // few-element fronts of budget-pruned sweeps.
  const auto cmp = [&](std::uint32_t x, std::uint32_t y) {
    if (cost[x] != cost[y]) return cost[x] < cost[y];
    if (damage[x] != damage[y]) return damage[x] > damage[y];
    return act[x] > act[y];
  };
  if (idx.size() <= 32) {
    for (std::size_t i = 1; i < idx.size(); ++i) {
      const std::uint32_t key = idx[i];
      std::size_t j = i;
      for (; j > 0 && cmp(key, idx[j - 1]); --j) idx[j] = idx[j - 1];
      idx[j] = key;
    }
  } else {
    std::stable_sort(idx.begin(), idx.end(), cmp);
  }

  // Staircase of (damage, act) maxima as a flat sorted vector (damage asc,
  // act strictly desc) — the same query / erase-covered / insert logic as
  // prune_min's std::map, without per-node allocations.  Erases are cheap:
  // covered entries are contiguous and the staircase stays small.
  auto& stair = scratch->stair;
  stair.clear();
  std::size_t kept = 0;
  for (const std::uint32_t i : idx) {
    const double d = damage[i];
    const double a = act[i];
    auto pos = std::lower_bound(
        stair.begin(), stair.end(), d,
        [](const std::pair<double, double>& e, double key) {
          return e.first < key;
        });
    if (pos != stair.end() && pos->second >= a)
      continue;  // dominated by, or value-equal to, an earlier element
    idx[kept++] = i;
    auto lo = pos;
    while (lo != stair.begin() && std::prev(lo)->second <= a) --lo;
    pos = stair.erase(lo, pos);
    if (pos != stair.end() && pos->first == d)
      pos->second = a;  // same damage, strictly larger act
    else
      stair.insert(pos, {d, a});
  }
  idx.resize(kept);
}

void prune_soa(TripleBuf* io, double budget, PruneScratch* scratch) {
  prune_select(io->view(), budget, scratch);
  const auto& idx = scratch->idx;
  const std::size_t kept = idx.size();

  // Gather the kept rows.
  const std::uint32_t wpa = io->wpa();
  auto& tmp = scratch->tmp;
  tmp.set_wpa(wpa);
  tmp.cost.resize(kept);
  tmp.damage.resize(kept);
  tmp.act.resize(kept);
  tmp.wit.resize(kept * wpa);
  const std::uint64_t* wit = io->wit.data();
  for (std::size_t r = 0; r < kept; ++r) {
    const std::uint32_t i = idx[r];
    tmp.cost[r] = io->cost[i];
    tmp.damage[r] = io->damage[i];
    tmp.act[r] = io->act[i];
    if (wpa)
      std::memcpy(tmp.wit.data() + r * wpa, wit + std::size_t{i} * wpa,
                  std::size_t{wpa} * sizeof(std::uint64_t));
  }
  std::swap(*io, tmp);
}

TripleView TripleFrontStack::from_top(std::size_t k) const {
  const std::size_t f = frame_off_.size() - 1 - k;
  const std::size_t b = frame_off_[f];
  const std::size_t e =
      f + 1 < frame_off_.size() ? frame_off_[f + 1] : cost_.size();
  return {cost_.data() + b, damage_.data() + b, act_.data() + b,
          wit_.data() + b * wpa_, e - b};
}

void TripleFrontStack::push(const TripleBuf& buf) {
  frame_off_.push_back(cost_.size());
  cost_.insert(cost_.end(), buf.cost.begin(), buf.cost.end());
  damage_.insert(damage_.end(), buf.damage.begin(), buf.damage.end());
  act_.insert(act_.end(), buf.act.begin(), buf.act.end());
  wit_.insert(wit_.end(), buf.wit.begin(), buf.wit.end());
}

void TripleFrontStack::push_select(const TripleView& v,
                                   const std::vector<std::uint32_t>& rows) {
  frame_off_.push_back(cost_.size());
  const std::size_t kept = rows.size();
  cost_.reserve(cost_.size() + kept);
  damage_.reserve(damage_.size() + kept);
  act_.reserve(act_.size() + kept);
  wit_.reserve(wit_.size() + kept * wpa_);
  // insert(), not resize()+write: resize would value-initialize the grown
  // region first, doubling the pool's write traffic on every push.
  for (const std::uint32_t i : rows) {
    cost_.push_back(v.cost[i]);
    damage_.push_back(v.damage[i]);
    act_.push_back(v.act[i]);
    wit_.insert(wit_.end(), v.wit + std::size_t{i} * wpa_,
                v.wit + (std::size_t{i} + 1) * wpa_);
  }
}

void TripleFrontStack::push_aos(const std::vector<AttrTriple>& xs,
                                std::size_t nbits) {
  (void)nbits;
  frame_off_.push_back(cost_.size());
  cost_.reserve(cost_.size() + xs.size());
  damage_.reserve(damage_.size() + xs.size());
  act_.reserve(act_.size() + xs.size());
  wit_.reserve(wit_.size() + xs.size() * wpa_);
  for (const AttrTriple& x : xs) {
    cost_.push_back(x.t.cost);
    damage_.push_back(x.t.damage);
    act_.push_back(x.t.act);
    const std::size_t nw = x.witness.word_count();
    for (std::size_t k = 0; k < nw && k < wpa_; ++k)
      wit_.push_back(x.witness.word(k));
    for (std::size_t k = nw; k < wpa_; ++k) wit_.push_back(0);
  }
}

void TripleFrontStack::push_view(const TripleView& v) {
  frame_off_.push_back(cost_.size());
  if (v.n == 0) return;
  cost_.insert(cost_.end(), v.cost, v.cost + v.n);
  damage_.insert(damage_.end(), v.damage, v.damage + v.n);
  act_.insert(act_.end(), v.act, v.act + v.n);
  wit_.insert(wit_.end(), v.wit, v.wit + v.n * wpa_);
}

void TripleFrontStack::compact_top(const std::vector<std::uint32_t>& rows,
                                   TripleBuf* bounce) {
  // rows are frame-relative and may select in any order, so an in-place
  // forward gather could read overwritten slots — bounce through a
  // scratch buffer (kept rows only, typically a handful).
  bounce->set_wpa(wpa_);
  bounce->clear();
  bounce->reserve(rows.size());
  const TripleView top = from_top(0);
  for (const std::uint32_t i : rows) {
    const std::size_t r = bounce->push_zero(top.cost[i], top.damage[i], top.act[i]);
    if (wpa_)
      std::memcpy(bounce->witness(r), top.wit + std::size_t{i} * wpa_,
                  std::size_t{wpa_} * sizeof(std::uint64_t));
  }
  pop(1);
  push(*bounce);
}

double* TripleFrontStack::top_damage() {
  return damage_.data() + frame_off_.back();
}

void TripleFrontStack::pop(std::size_t k) {
  const std::size_t f = frame_off_.size() - k;
  const std::size_t b = frame_off_[f];
  cost_.resize(b);
  damage_.resize(b);
  act_.resize(b);
  wit_.resize(b * wpa_);
  frame_off_.resize(f);
}

std::vector<AttrTriple> TripleFrontStack::top_to_aos(std::size_t nbits) const {
  const TripleView v = from_top(0);
  std::vector<AttrTriple> xs;
  xs.reserve(v.n);
  for (std::size_t r = 0; r < v.n; ++r) {
    AttrTriple x;
    x.t = {v.cost[r], v.damage[r], v.act[r]};
    x.witness = DynBitset(nbits);
    const std::uint64_t* w = v.wit + r * wpa_;
    for (std::size_t k = 0; k < x.witness.word_count(); ++k)
      x.witness.set_word(k, w[k]);
    xs.push_back(std::move(x));
  }
  return xs;
}

void TripleFrontStack::top_to_aos_into(std::size_t nbits,
                                       std::vector<AttrTriple>* out) const {
  view_to_aos_into(from_top(0), nbits, out);
}

void view_to_aos_into(const TripleView& v, std::size_t nbits,
                      std::vector<AttrTriple>* out) {
  const std::size_t wpa = words_per_attack(nbits);
  if (out->size() > v.n) out->resize(v.n);
  out->reserve(v.n);
  for (std::size_t r = 0; r < v.n; ++r) {
    if (r == out->size()) out->emplace_back();
    AttrTriple& x = (*out)[r];
    x.t = {v.cost[r], v.damage[r], v.act[r]};
    if (x.witness.size() != nbits) x.witness = DynBitset(nbits);
    const std::uint64_t* w = v.wit + r * wpa;
    for (std::size_t k = 0; k < x.witness.word_count(); ++k)
      x.witness.set_word(k, w[k]);
  }
}

void TripleFrontStack::clear() {
  cost_.clear();
  damage_.clear();
  act_.clear();
  wit_.clear();
  frame_off_.clear();
}

// ---------------------------------------------------------------------------
// FrontSoaStore
// ---------------------------------------------------------------------------

std::uint32_t FrontSoaStore::add(const Front2d& f) {
  Meta m;
  m.point_off = xs_.size();
  m.wit_off = wit_.size();
  m.count = static_cast<std::uint32_t>(f.size());
  m.nbits = f.empty() ? 0 : static_cast<std::uint32_t>(f[0].witness.size());
  const std::uint32_t wpa = words_per_attack(m.nbits);
  for (const auto& p : f) {
    xs_.push_back(p.value.cost);
    ys_.push_back(p.value.damage);
    const std::size_t base = wit_.size();
    wit_.resize(base + wpa, 0);
    const std::size_t nw = p.witness.word_count();
    for (std::size_t k = 0; k < nw && k < wpa; ++k)
      wit_[base + k] = p.witness.word(k);
  }
  meta_.push_back(m);
  return static_cast<std::uint32_t>(meta_.size() - 1);
}

Front2d FrontSoaStore::get(std::uint32_t i) const {
  const Meta& m = meta_[i];
  const std::uint32_t wpa = words_per_attack(m.nbits);
  std::vector<FrontPoint> pts;
  pts.reserve(m.count);
  for (std::uint32_t r = 0; r < m.count; ++r) {
    FrontPoint p;
    p.value = {xs_[m.point_off + r], ys_[m.point_off + r]};
    p.witness = DynBitset(m.nbits);
    const std::uint64_t* w = wit_.data() + m.wit_off + std::size_t{r} * wpa;
    for (std::size_t k = 0; k < p.witness.word_count(); ++k)
      p.witness.set_word(k, w[k]);
    pts.push_back(std::move(p));
  }
  // A stored front is already minimal and in front order, so the sweep
  // keeps every point; of_candidates re-establishes the class invariant.
  return Front2d::of_candidates(std::move(pts), assume_sorted);
}

namespace {

constexpr std::uint32_t kStoreMagic = 0x53465441;  // "ATFS" little-endian
constexpr std::uint32_t kStoreVersion = 1;

template <typename T>
void append_raw(std::string* out, const T* p, std::size_t n) {
  out->append(reinterpret_cast<const char*>(p), n * sizeof(T));
}

template <typename T>
bool read_raw(const std::string& in, std::size_t* at, T* p, std::size_t n) {
  const std::size_t bytes = n * sizeof(T);
  if (in.size() - *at < bytes) return false;
  std::memcpy(p, in.data() + *at, bytes);
  *at += bytes;
  return true;
}

}  // namespace

std::string FrontSoaStore::to_bytes() const {
  std::string out;
  const std::uint64_t counts[3] = {meta_.size(), xs_.size(), wit_.size()};
  out.reserve(sizeof(kStoreMagic) + sizeof(kStoreVersion) + sizeof(counts) +
              meta_.size() * 24 + xs_.size() * 16 + wit_.size() * 8);
  append_raw(&out, &kStoreMagic, 1);
  append_raw(&out, &kStoreVersion, 1);
  append_raw(&out, counts, 3);
  for (const Meta& m : meta_) {
    append_raw(&out, &m.point_off, 1);
    append_raw(&out, &m.wit_off, 1);
    append_raw(&out, &m.count, 1);
    append_raw(&out, &m.nbits, 1);
  }
  append_raw(&out, xs_.data(), xs_.size());
  append_raw(&out, ys_.data(), ys_.size());
  append_raw(&out, wit_.data(), wit_.size());
  return out;
}

std::optional<FrontSoaStore> FrontSoaStore::from_bytes(
    const std::string& bytes) {
  std::size_t at = 0;
  std::uint32_t magic = 0, version = 0;
  std::uint64_t counts[3] = {0, 0, 0};
  if (!read_raw(bytes, &at, &magic, 1) || magic != kStoreMagic) return {};
  if (!read_raw(bytes, &at, &version, 1) || version != kStoreVersion)
    return {};
  if (!read_raw(bytes, &at, counts, 3)) return {};
  // Reject images whose declared sizes cannot fit in the remaining bytes
  // before allocating.
  const std::uint64_t need =
      counts[0] * 24 + counts[1] * 16 + counts[2] * 8;
  if (bytes.size() - at != need) return {};

  FrontSoaStore s;
  s.meta_.resize(counts[0]);
  for (Meta& m : s.meta_) {
    if (!read_raw(bytes, &at, &m.point_off, 1) ||
        !read_raw(bytes, &at, &m.wit_off, 1) ||
        !read_raw(bytes, &at, &m.count, 1) ||
        !read_raw(bytes, &at, &m.nbits, 1))
      return {};
  }
  s.xs_.resize(counts[1]);
  s.ys_.resize(counts[1]);
  s.wit_.resize(counts[2]);
  if (!read_raw(bytes, &at, s.xs_.data(), s.xs_.size()) ||
      !read_raw(bytes, &at, s.ys_.data(), s.ys_.size()) ||
      !read_raw(bytes, &at, s.wit_.data(), s.wit_.size()))
    return {};

  // Span consistency: every front must lie inside the shared columns.
  for (const Meta& m : s.meta_) {
    const std::uint64_t wpa = words_per_attack(m.nbits);
    if (m.point_off + m.count > s.xs_.size()) return {};
    if (m.wit_off + std::uint64_t{m.count} * wpa > s.wit_.size()) return {};
  }
  return s;
}

Front2d merge_fronts(const Front2d& a, const Front2d& b) {
  // Both inputs are in (cost asc, strictly damage asc) front order, which
  // is also (cost asc, damage desc) candidate order because a minimal
  // front holds at most one point per cost.  A stable two-pointer merge
  // (ties take from `a`) therefore feeds the sweep directly — no sort.
  std::vector<FrontPoint> merged;
  merged.reserve(a.size() + b.size());
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const bool b_first =
        b[j].value.cost < a[i].value.cost ||
        (b[j].value.cost == a[i].value.cost &&
         b[j].value.damage > a[i].value.damage);
    merged.push_back(b_first ? b[j++] : a[i++]);
  }
  for (; i < a.size(); ++i) merged.push_back(a[i]);
  for (; j < b.size(); ++j) merged.push_back(b[j]);
  return Front2d::of_candidates(std::move(merged), assume_sorted);
}

Front2d minkowski_fronts(const Front2d& a, const Front2d& b) {
  std::vector<FrontPoint> sums;
  sums.reserve(a.size() * b.size());
  for (const auto& p : a)
    for (const auto& q : b) {
      FrontPoint s;
      s.value = {p.value.cost + q.value.cost,
                 p.value.damage + q.value.damage};
      s.witness = p.witness | q.witness;
      sums.push_back(std::move(s));
    }
  return Front2d::of_candidates(std::move(sums));
}

}  // namespace atcd
