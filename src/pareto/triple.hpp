#pragma once
/// \file triple.hpp
/// The extended attribute-triple domains of the bottom-up engines.
///
/// Deterministic setting (Sec. VI):  DTrip = R_{>=0} x R_{>=0} x B with
/// (c,d,b) ⊑ (c',d',b')  iff  c<=c', d>=d', b>=b'.  The third coordinate —
/// whether the attack reaches the current node — is the attack's
/// "potential" to do more damage higher up; dropping it makes bottom-up
/// propagation unsound (paper Example 4, and our ablation bench A1).
///
/// Probabilistic setting (Sec. IX):  PTrip replaces the boolean by the
/// activation probability PS(x,v) in [0,1].  We represent both domains
/// with one type, Triple, whose `act` field is {0,1}-valued in the
/// deterministic engine.
///
/// prune_min implements the map min_U : P(Trip) -> P(Trip): it drops
/// elements whose cost exceeds the budget U and keeps exactly the
/// ⊑-minimal elements of the rest, deduplicated by value.  The sweep is
/// O(n log n) via a 2-D staircase of (damage, act) maxima.

#include <limits>
#include <vector>

#include "util/bitset.hpp"

namespace atcd {

/// Attribute triple: (cost, damage, activation).
struct Triple {
  double cost = 0.0;
  double damage = 0.0;
  double act = 0.0;  ///< S(x,v) in {0,1} (det.) or PS(x,v) in [0,1] (prob.)

  bool operator==(const Triple&) const = default;
};

/// Non-strict triple order ⊑.
inline bool leq(const Triple& a, const Triple& b) {
  return a.cost <= b.cost && a.damage >= b.damage && a.act >= b.act;
}

/// Strict domination ⊏.
inline bool dominates(const Triple& a, const Triple& b) {
  return leq(a, b) && a != b;
}

/// A triple together with a witness attack on the current subtree.
struct AttrTriple {
  Triple t;
  DynBitset witness;
};

inline constexpr double kNoBudget = std::numeric_limits<double>::infinity();

/// min_U: removes elements with cost > budget, then keeps exactly the
/// ⊑-minimal elements of the remainder, value-deduplicated (first witness
/// wins).  O(n log n).
std::vector<AttrTriple> prune_min(std::vector<AttrTriple> xs,
                                  double budget = kNoBudget);

/// Reference implementation by pairwise comparison, O(n^2).  Used in tests
/// and in the pruning-strategy ablation bench.
std::vector<AttrTriple> prune_min_quadratic(std::vector<AttrTriple> xs,
                                            double budget = kNoBudget);

}  // namespace atcd
