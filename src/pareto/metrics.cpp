#include "pareto/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace atcd {

bool epsilon_covers(const Front2d& a, const Front2d& b, double tol,
                    std::string* unmatched) {
  for (std::size_t i = 0; i < b.size(); ++i) {
    const FrontPoint* p = a.max_damage_within_cost(b[i].value.cost + tol);
    if (!p || p->value.damage < b[i].value.damage - tol) {
      if (unmatched) {
        std::ostringstream out;
        out << "point (" << b[i].value.cost << ", " << b[i].value.damage
            << ") is not epsilon-matched";
        *unmatched = out.str();
      }
      return false;
    }
  }
  return true;
}

bool epsilon_equal(const Front2d& a, const Front2d& b, double tol) {
  return epsilon_covers(a, b, tol) && epsilon_covers(b, a, tol);
}

double front_gap(const Front2d& a, const Front2d& b) {
  double gap = 0.0;
  for (const FrontPoint& p : b) {
    const FrontPoint* best = a.max_damage_within_cost(p.value.cost);
    const double reached = best ? best->value.damage : 0.0;
    gap = std::max(gap, p.value.damage - reached);
  }
  return gap;
}

double front_distance(const Front2d& a, const Front2d& b) {
  return std::max(front_gap(a, b), front_gap(b, a));
}

double hypervolume(const Front2d& front, double ref_cost) {
  // Points come sorted by ascending cost and (by minimality) ascending
  // damage, so each point contributes the slab between its damage and
  // its predecessor's, as wide as its cost slack against the reference.
  double area = 0.0;
  double prev_damage = 0.0;
  for (const FrontPoint& p : front) {
    if (p.value.cost > ref_cost) break;
    area += (ref_cost - p.value.cost) * (p.value.damage - prev_damage);
    prev_damage = p.value.damage;
  }
  return area;
}

}  // namespace atcd
