#pragma once
/// \file front_soa.hpp
/// Structure-of-arrays Pareto-front storage and kernels — the hot-path
/// companion of triple.hpp / front2d.hpp.
///
/// The pointer-based sweep spends its time in two places: combining two
/// child fronts (cross product of AttrTriples, each carrying its own
/// heap-allocated DynBitset witness — one allocation per candidate) and
/// pruning (stable_sort moving whole AttrTriples, a std::map staircase
/// allocating a node per kept point).  Both are memory-latency bound,
/// not compute bound.
///
/// This file stores fronts as parallel columns instead: cost / damage /
/// activation arrays plus one flat witness-word array (every witness is
/// `wpa` consecutive uint64 words).  The kernels then become linear
/// passes:
///
///   * combine_soa     — cross product with witnesses OR-ed word-wise
///                       into pre-sized flat storage; zero allocations
///                       in steady state.
///   * prune_soa       — budget filter + index stable-sort (moving u32
///                       indices, not triples) + a flat vector staircase,
///                       then one gather pass.  Exactly prune_min()'s
///                       semantics, point for point.
///   * TripleFrontStack— per-node front storage for the arena sweep:
///                       shared columns with per-frame spans under stack
///                       discipline, so live memory tracks the DFS
///                       fringe (≈ depth), not the node count.
///
/// For 2-D (cost, damage) fronts, FrontSoaStore packs many fronts into
/// shared columns with per-front spans and a versioned, trivially
/// memcpy-able byte layout — the designated serialization substrate for
/// cache snapshots (ROADMAP item 2).  merge_fronts / minkowski_fronts
/// are the matching sorted-input kernels.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "at/attack_tree.hpp"
#include "pareto/front2d.hpp"
#include "pareto/triple.hpp"

namespace atcd {

/// Read-only SoA view of a triple front: parallel columns of length n,
/// plus n * wpa packed witness words.
struct TripleView {
  const double* cost = nullptr;
  const double* damage = nullptr;
  const double* act = nullptr;
  const std::uint64_t* wit = nullptr;
  std::size_t n = 0;
};

/// Owning SoA buffer of attribute triples.  `wpa` (witness words per
/// attack) is fixed per model: ceil(bas_count / 64).
class TripleBuf {
 public:
  TripleBuf() = default;
  explicit TripleBuf(std::uint32_t wpa) : wpa_(wpa) {}

  std::uint32_t wpa() const { return wpa_; }
  void set_wpa(std::uint32_t wpa) { wpa_ = wpa; }
  std::size_t size() const { return cost.size(); }
  bool empty() const { return cost.empty(); }

  void clear() {
    cost.clear();
    damage.clear();
    act.clear();
    wit.clear();
  }

  void reserve(std::size_t n) {
    cost.reserve(n);
    damage.reserve(n);
    act.reserve(n);
    wit.reserve(n * wpa_);
  }

  /// Appends a triple with an all-zero witness; returns its row.
  std::size_t push_zero(double c, double d, double a) {
    cost.push_back(c);
    damage.push_back(d);
    act.push_back(a);
    wit.resize(wit.size() + wpa_, 0);
    return cost.size() - 1;
  }

  std::uint64_t* witness(std::size_t row) { return wit.data() + row * wpa_; }
  const std::uint64_t* witness(std::size_t row) const {
    return wit.data() + row * wpa_;
  }

  TripleView view() const {
    return {cost.data(), damage.data(), act.data(), wit.data(), cost.size()};
  }

  /// Conversions at the SubtreeVisitor boundary (memo entries stay AoS,
  /// so caches and sessions remain bit-compatible).  \p nbits is the
  /// witness bit width (the host model's BAS count).
  static TripleBuf from_aos(const std::vector<AttrTriple>& xs,
                            std::size_t nbits);
  std::vector<AttrTriple> to_aos(std::size_t nbits) const;

  std::vector<double> cost, damage, act;
  std::vector<std::uint64_t> wit;  ///< size() * wpa() words

 private:
  std::uint32_t wpa_ = 0;
};

/// out = a × b under \p gate: costs and damages add, activations combine
/// by the gate operator (AND: p·q, OR: p + q − pq), witnesses union.
/// Iterates a-major then b-minor — the exact order of the pointer path's
/// combine(), so downstream stable sorts see the same sequence.  Rows
/// whose cost exceeds \p budget are elided during generation (before the
/// witness OR is paid) — exactly the rows prune's min_U filter would drop
/// first, so the surviving sequence is unchanged.
/// \p out is cleared first; its wpa must match.
void combine_soa(const TripleView& a, const TripleView& b, NodeType gate,
                 TripleBuf* out, double budget = kNoBudget);

/// Reusable scratch for prune_soa (index arrays, staircase, gather
/// target); hoisted out so a whole sweep allocates only while warming.
struct PruneScratch {
  std::vector<std::uint32_t> idx;
  std::vector<std::pair<double, double>> stair;  // (damage, act), damage asc
  TripleBuf tmp;
};

/// min_U over SoA storage: drops rows with cost > budget, keeps exactly
/// the ⊑-minimal remainder value-deduplicated (first witness wins), in
/// (cost asc, damage desc, act desc) order — point-for-point identical
/// to prune_min() on the same sequence.  In-place on \p io.
void prune_soa(TripleBuf* io, double budget, PruneScratch* scratch);

/// The selection half of prune_soa: fills scratch->idx with the surviving
/// row indices of \p v, in the final output order, without touching the
/// rows themselves.  Callers that gather straight into their destination
/// (TripleFrontStack::push_select / compact_top) skip prune_soa's bounce
/// copy entirely.
void prune_select(const TripleView& v, double budget, PruneScratch* scratch);

/// SoA view -> AoS triples into a caller-owned vector, reusing its
/// elements and witness storage (alloc-free in steady state).  \p v's
/// witness stride is ceil(nbits / 64) words per row.
void view_to_aos_into(const TripleView& v, std::size_t nbits,
                      std::vector<AttrTriple>* out);

/// Stack-disciplined pool of triple fronts in shared SoA columns.  The
/// arena sweep pushes one frame per completed subtree and pops the top k
/// to fold a k-ary gate, so the live set is exactly the DFS fringe.
class TripleFrontStack {
 public:
  explicit TripleFrontStack(std::uint32_t wpa) : wpa_(wpa) {}

  std::uint32_t wpa() const { return wpa_; }
  std::size_t frames() const { return frame_off_.size(); }

  /// View of the k-th frame from the top (k = 0 is the top).
  TripleView from_top(std::size_t k) const;

  /// Appends \p buf as a new top frame (rows copied into the pool).
  void push(const TripleBuf& buf);

  /// Appends a new top frame holding rows[i] of \p v, in order — the
  /// gather-on-push companion of prune_select().  \p v must not alias
  /// this stack's storage (pushing can reallocate the columns).
  void push_select(const TripleView& v,
                   const std::vector<std::uint32_t>& rows);

  /// Appends a new top frame straight from AoS triples — the memo-hit
  /// path, with no TripleBuf bounce.  \p nbits is the witness bit width;
  /// short witnesses are zero-padded to wpa() words.
  void push_aos(const std::vector<AttrTriple>& xs, std::size_t nbits);

  /// Appends a new top frame from an SoA view whose witness stride
  /// already equals wpa() — four contiguous column copies, the fastest
  /// memo-hit path.  \p v must not alias this stack's storage.
  void push_view(const TripleView& v);

  /// Replaces the top frame by its own rows[i] (frame-relative indices,
  /// any order), via \p bounce — in-place prune of the top frame.
  void compact_top(const std::vector<std::uint32_t>& rows, TripleBuf* bounce);

  /// Mutable damage column of the top frame (the gate-finish own-damage
  /// add runs directly on the pool).
  double* top_damage();

  /// Drops the top \p k frames (their rows are reclaimed).
  void pop(std::size_t k);

  /// AoS copy of the top frame — what SubtreeVisitor::store receives.
  std::vector<AttrTriple> top_to_aos(std::size_t nbits) const;

  /// top_to_aos into a caller-owned vector, reusing its triples and
  /// witness storage — alloc-free in steady state (same output, element
  /// for element).
  void top_to_aos_into(std::size_t nbits, std::vector<AttrTriple>* out) const;

  void clear();

  /// clear() plus a new witness stride — re-arms a pooled stack for a
  /// model with a different BAS count while keeping column capacity.
  void reset(std::uint32_t wpa) {
    wpa_ = wpa;
    clear();
  }

 private:
  std::uint32_t wpa_;
  std::vector<double> cost_, damage_, act_;
  std::vector<std::uint64_t> wit_;
  std::vector<std::size_t> frame_off_;  ///< first row of each frame
};

// ---------------------------------------------------------------------------
// 2-D packed fronts: the snapshot substrate.
// ---------------------------------------------------------------------------

/// Many (cost, damage) Pareto fronts packed into shared columns with
/// per-front spans, each point carrying its witness in a flat word
/// array.  The in-memory layout is plain contiguous arrays, and
/// to_bytes()/from_bytes() is a straight memcpy of those arrays behind a
/// small versioned header — the serialization substrate for result- and
/// subtree-cache snapshots (ROADMAP item 2).
class FrontSoaStore {
 public:
  /// Appends a front; returns its index.
  std::uint32_t add(const Front2d& f);

  std::size_t size() const { return meta_.size(); }
  std::size_t point_count() const { return xs_.size(); }

  /// Number of points of front \p i.
  std::size_t front_size(std::uint32_t i) const { return meta_[i].count; }

  /// Reconstructs front \p i (points + witnesses, same order).
  Front2d get(std::uint32_t i) const;

  /// Versioned binary image; from_bytes() returns nullopt on a
  /// truncated, corrupt, or version-mismatched image.
  std::string to_bytes() const;
  static std::optional<FrontSoaStore> from_bytes(const std::string& bytes);

  bool operator==(const FrontSoaStore&) const = default;

 private:
  struct Meta {
    std::uint64_t point_off = 0;  ///< first row in xs_/ys_
    std::uint64_t wit_off = 0;    ///< first word in wit_
    std::uint32_t count = 0;      ///< points in this front
    std::uint32_t nbits = 0;      ///< witness bit width
    bool operator==(const Meta&) const = default;
  };
  std::vector<double> xs_, ys_;        // cost / damage columns
  std::vector<std::uint64_t> wit_;     // packed witness words
  std::vector<Meta> meta_;
};

/// Union of two fronts, minimized: one linear merge pass over the two
/// sorted inputs (no re-sort — both are in (cost asc, damage asc) front
/// order, which is also (cost asc, damage desc) candidate order since
/// fronts hold at most one point per cost).  First witness wins on
/// value-equal points, `a` before `b`.
Front2d merge_fronts(const Front2d& a, const Front2d& b);

/// Minkowski sum of two fronts, minimized: all pairwise (cost + cost,
/// damage + damage) points with witnesses unioned — the 2-D AND-gate
/// composition of independent sub-AT fronts.
Front2d minkowski_fronts(const Front2d& a, const Front2d& b);

}  // namespace atcd
