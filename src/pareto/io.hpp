#pragma once
/// \file io.hpp
/// Export of Pareto fronts for downstream tooling: CSV (spreadsheets,
/// pgfplots — how the paper's Fig. 3/6 plots are drawn) and a minimal
/// JSON form (dashboards).  The inverse CSV reader supports regression
/// baselines in user pipelines.

#include <string>

#include "at/attack_tree.hpp"
#include "pareto/front2d.hpp"

namespace atcd {

/// CSV with header "cost,damage,attack"; the attack column lists BAS
/// names joined by '+' (empty attack = empty field).  If \p tree is
/// null the attack column holds the raw bit string instead.
std::string front_to_csv(const Front2d& f, const AttackTree* tree = nullptr);

/// JSON array of {"cost": c, "damage": d, "attack": [names...]}.
std::string front_to_json(const Front2d& f, const AttackTree* tree = nullptr);

/// Parses front_to_csv output back into (cost, damage) pairs; witness
/// attacks are restored only when \p tree is given and the file used BAS
/// names.  Throws ParseError on malformed input.
Front2d front_from_csv(const std::string& csv, const AttackTree* tree = nullptr);

}  // namespace atcd
