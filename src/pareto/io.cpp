#include "pareto/io.hpp"

#include <sstream>

#include "at/structure.hpp"
#include "util/error.hpp"

namespace atcd {
namespace {

std::string attack_field(const DynBitset& w, const AttackTree* tree) {
  std::string out;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (!w.test(i)) continue;
    if (!out.empty()) out += '+';
    out += tree ? tree->name(tree->bas_id(static_cast<std::uint32_t>(i)))
                : std::to_string(i);
  }
  return out;
}

}  // namespace

std::string front_to_csv(const Front2d& f, const AttackTree* tree) {
  std::ostringstream out;
  out.precision(17);
  out << "cost,damage,attack\n";
  for (const auto& p : f)
    out << p.value.cost << ',' << p.value.damage << ','
        << attack_field(p.witness, tree) << '\n';
  return out.str();
}

std::string front_to_json(const Front2d& f, const AttackTree* tree) {
  std::ostringstream out;
  out.precision(17);
  out << "[";
  for (std::size_t i = 0; i < f.size(); ++i) {
    const auto& p = f[i];
    out << (i ? ",\n " : "\n ") << "{\"cost\": " << p.value.cost
        << ", \"damage\": " << p.value.damage << ", \"attack\": [";
    bool first = true;
    for (std::size_t b = 0; b < p.witness.size(); ++b) {
      if (!p.witness.test(b)) continue;
      if (!first) out << ", ";
      out << '"'
          << (tree ? tree->name(tree->bas_id(static_cast<std::uint32_t>(b)))
                   : std::to_string(b))
          << '"';
      first = false;
    }
    out << "]}";
  }
  out << "\n]\n";
  return out.str();
}

Front2d front_from_csv(const std::string& csv, const AttackTree* tree) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line) || line.rfind("cost,damage", 0) != 0)
    throw ParseError("front_from_csv: missing header");
  std::vector<FrontPoint> pts;
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cost_s, damage_s, attack_s;
    if (!std::getline(row, cost_s, ',') || !std::getline(row, damage_s, ','))
      throw ParseError("front_from_csv: bad row at line " +
                       std::to_string(lineno));
    std::getline(row, attack_s);
    FrontPoint p;
    try {
      p.value.cost = std::stod(cost_s);
      p.value.damage = std::stod(damage_s);
    } catch (const std::exception&) {
      throw ParseError("front_from_csv: bad number at line " +
                       std::to_string(lineno));
    }
    if (tree) {
      p.witness = DynBitset(tree->bas_count());
      std::istringstream names(attack_s);
      std::string name;
      while (std::getline(names, name, '+')) {
        if (name.empty()) continue;
        const auto id = tree->find(name);
        if (!id || !tree->is_bas(*id))
          throw ParseError("front_from_csv: unknown BAS '" + name +
                           "' at line " + std::to_string(lineno));
        p.witness.set(tree->bas_index(*id));
      }
    }
    pts.push_back(std::move(p));
  }
  return Front2d::of_candidates(std::move(pts));
}

}  // namespace atcd
