#include "pareto/triple.hpp"

#include <algorithm>
#include <map>

namespace atcd {

std::vector<AttrTriple> prune_min(std::vector<AttrTriple> xs, double budget) {
  if (budget != kNoBudget) {
    std::erase_if(xs, [budget](const AttrTriple& a) { return a.t.cost > budget; });
  }
  // Sort by (cost asc, damage desc, act desc).  Every element earlier in
  // this order has cost <= the current one, so the current element is
  // dominated-or-duplicate iff some earlier element has damage >= d and
  // act >= a.  That query is answered by a staircase of (damage, act)
  // maxima: kept entries have strictly increasing damage and strictly
  // decreasing act, so among entries with damage >= d the maximal act sits
  // at the first such entry.
  std::stable_sort(xs.begin(), xs.end(),
                   [](const AttrTriple& a, const AttrTriple& b) {
                     if (a.t.cost != b.t.cost) return a.t.cost < b.t.cost;
                     if (a.t.damage != b.t.damage)
                       return a.t.damage > b.t.damage;
                     return a.t.act > b.t.act;
                   });
  std::vector<AttrTriple> kept;
  kept.reserve(xs.size());
  std::map<double, double> stair;  // damage -> act, maxima staircase
  for (auto& x : xs) {
    const auto it = stair.lower_bound(x.t.damage);
    if (it != stair.end() && it->second >= x.t.act)
      continue;  // dominated by, or value-equal to, an earlier element
    kept.push_back(std::move(x));
    const Triple& t = kept.back().t;
    // Insert (damage, act); erase staircase entries it now covers
    // (damage <= t.damage and act <= t.act).
    auto pos = stair.lower_bound(t.damage);
    while (pos != stair.begin()) {
      auto prev = std::prev(pos);
      if (prev->second <= t.act)
        pos = stair.erase(prev);
      else
        break;
    }
    if (pos != stair.end() && pos->first == t.damage)
      pos->second = t.act;  // same damage, strictly larger act
    else
      stair.emplace_hint(pos, t.damage, t.act);
  }
  return kept;
}

std::vector<AttrTriple> prune_min_quadratic(std::vector<AttrTriple> xs,
                                            double budget) {
  if (budget != kNoBudget) {
    std::erase_if(xs, [budget](const AttrTriple& a) { return a.t.cost > budget; });
  }
  std::vector<AttrTriple> kept;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    bool drop = false;
    for (std::size_t j = 0; j < xs.size() && !drop; ++j) {
      if (j == i) continue;
      if (dominates(xs[j].t, xs[i].t)) drop = true;
      // Value-duplicates: keep only the first occurrence.
      if (j < i && xs[j].t == xs[i].t) drop = true;
    }
    if (!drop) kept.push_back(xs[i]);
  }
  return kept;
}

}  // namespace atcd
