#pragma once
/// \file metrics.hpp
/// Quantitative comparisons between cost-damage Pareto fronts.
///
/// Point-for-point equality (Front2d::same_values) is the right notion
/// only under exact arithmetic.  Probabilistic engines accumulate
/// 1e-15-scale summation noise that can flip the survival of
/// dominated-up-to-noise points between engines, and scenario analysis
/// needs to *measure* how far apart two fronts are, not just whether
/// they are equal.  This header provides both:
///
///  * epsilon_covers / epsilon_equal — the tolerance-based front
///    comparator used by the cross-engine differential fuzz harness
///    (tests/test_differential.cpp): two fronts that epsilon-cover each
///    other describe the same frontier.
///  * front_distance — the symmetric damage-gap between two frontiers,
///    the sensitivity metric of src/analysis/: how much attainable
///    damage one front reaches that the other cannot match at equal
///    cost, maximized over the frontier.
///  * hypervolume — the area dominated by a front up to a cost
///    reference, the standard scalar summary of multi-objective
///    optimization; scenario sweeps report it per grid cell.

#include <string>

#include "pareto/front2d.hpp"

namespace atcd {

/// One-sided epsilon-domination: every point of \p b is matched by \p a
/// up to the tolerance — a reaches damage >= d - tol at cost <= c + tol.
/// When a point is unmatched and \p unmatched is non-null, it receives a
/// human-readable description of the first offending point.
bool epsilon_covers(const Front2d& a, const Front2d& b, double tol,
                    std::string* unmatched = nullptr);

/// Mutual epsilon-domination: the two fronts describe the same frontier
/// up to the tolerance.
bool epsilon_equal(const Front2d& a, const Front2d& b, double tol);

/// Directed damage-gap: the largest damage shortfall of \p a against
/// \p b — max over points (c, d) of b of max(0, d - best damage a
/// attains at cost <= c).  Zero iff a covers b with no tolerance slack
/// on the cost axis.  An empty \p b yields 0.
double front_gap(const Front2d& a, const Front2d& b);

/// Symmetric frontier distance: max(front_gap(a, b), front_gap(b, a)).
/// Zero iff the two fronts attain identical damage at every cost level;
/// small values mean the frontiers differ only by damage-noise.  This is
/// the quantitative counterpart of epsilon_equal (which additionally
/// allows tol slack on the cost axis).
double front_distance(const Front2d& a, const Front2d& b);

/// Area of the cost-damage region dominated by the front relative to the
/// cost reference \p ref_cost: the union over front points (c, d) with
/// c <= ref_cost of the rectangles [c, ref_cost] x [0, d].  The standard
/// staircase sum; O(|front|) thanks to the ascending-cost invariant.
/// Larger = the attacker attains more damage at lower cost.
double hypervolume(const Front2d& front, double ref_cost);

}  // namespace atcd
