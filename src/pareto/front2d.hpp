#pragma once
/// \file front2d.hpp
/// The cost-damage Pareto front: the minimal elements of the image of the
/// attack space under the evaluation map (ĉ, d̂) — the solution object of
/// problem CDPF / CEDPF.  Points are value-deduplicated and each carries
/// one witness attack achieving it, so the attack-set columns of the
/// paper's Fig. 6 can be regenerated.

#include <string>
#include <vector>

#include "pareto/point.hpp"
#include "util/bitset.hpp"

namespace atcd {

/// One Pareto-optimal point with a witness attack.
struct FrontPoint {
  CdPoint value;
  DynBitset witness;  ///< an attack x with (ĉ(x), d̂(x)) == value
};

/// Tag for Front2d::of_candidates overloads taking pre-sorted input.
struct assume_sorted_t {
  explicit assume_sorted_t() = default;
};
inline constexpr assume_sorted_t assume_sorted{};

/// A cost-damage Pareto front, kept sorted by ascending cost (and hence,
/// by minimality, strictly ascending damage).
class Front2d {
 public:
  Front2d() = default;

  /// Builds the front from arbitrary candidate points: keeps exactly the
  /// minimal elements of the poset, deduplicated by value (first witness
  /// wins among value-equal candidates).  Input already sorted by
  /// (cost asc, damage desc) — e.g. the projection of a pruned bottom-up
  /// sweep, or a merge of sorted fronts — is detected in one linear pass
  /// and skips the sort entirely.
  static Front2d of_candidates(std::vector<FrontPoint> candidates);

  /// As above, but the caller vouches that \p candidates are already
  /// sorted by (cost asc, damage desc): no check, no sort — the minimal
  /// sweep runs directly.  The SoA merge/minkowski kernels and the
  /// bottom-up projection use this.
  static Front2d of_candidates(std::vector<FrontPoint> candidates,
                               assume_sorted_t);

  const std::vector<FrontPoint>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const FrontPoint& operator[](std::size_t i) const { return points_[i]; }

  auto begin() const { return points_.begin(); }
  auto end() const { return points_.end(); }

  /// Solves DgC from the front (paper eq. (1)): the maximal damage
  /// achievable with cost <= U, together with its witness.  Returns
  /// nullptr if no front point satisfies the budget (cannot happen for
  /// U >= 0 on a complete front, which always contains the empty attack).
  const FrontPoint* max_damage_within_cost(double budget) const;

  /// Solves CgD from the front (paper eq. (2)): the minimal cost whose
  /// damage reaches L.  Returns nullptr if L exceeds the maximal damage.
  const FrontPoint* min_cost_with_damage(double threshold) const;

  /// True if both fronts contain the same (cost,damage) values up to the
  /// given absolute tolerance (witnesses are not compared).
  bool same_values(const Front2d& other, double tol = 1e-9) const;

  /// Tab-separated "cost damage witness" dump, one point per line.
  std::string to_string() const;

 private:
  std::vector<FrontPoint> points_;
};

}  // namespace atcd
