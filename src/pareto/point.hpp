#pragma once
/// \file point.hpp
/// The cost-damage attribute pair domain (R^2_{>=0}, ⊑) of Sec. IV:
/// (a,a') ⊑ (b,b')  iff  a <= b and a' >= b'  (cheaper and more damaging
/// is better).  An attack x *dominates* y iff cd(x) ⊏ cd(y) strictly.

namespace atcd {

/// A point of the cost-damage plane.
struct CdPoint {
  double cost = 0.0;
  double damage = 0.0;

  bool operator==(const CdPoint&) const = default;
};

/// Non-strict order ⊑ of the attribute-pair poset.
inline bool leq(const CdPoint& a, const CdPoint& b) {
  return a.cost <= b.cost && a.damage >= b.damage;
}

/// Strict domination ⊏ : at least as good in both coordinates and strictly
/// better in at least one.
inline bool dominates(const CdPoint& a, const CdPoint& b) {
  return leq(a, b) && a != b;
}

}  // namespace atcd
