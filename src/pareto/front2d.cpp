#include "pareto/front2d.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace atcd {

namespace {

/// The candidate order of the minimal sweep: (cost asc, damage desc).
bool candidate_less(const FrontPoint& a, const FrontPoint& b) {
  if (a.value.cost != b.value.cost) return a.value.cost < b.value.cost;
  return a.value.damage > b.value.damage;
}

}  // namespace

Front2d Front2d::of_candidates(std::vector<FrontPoint> candidates) {
  // Sort by (cost asc, damage desc); a left-to-right sweep keeping points
  // of strictly increasing damage then yields exactly the minimal,
  // value-deduplicated elements.  Already-sorted input — the common case
  // for merge/prune outputs, which keep their points in exactly this
  // order — is detected in one linear pass and skips the sort.
  if (!std::is_sorted(candidates.begin(), candidates.end(), candidate_less))
    std::stable_sort(candidates.begin(), candidates.end(), candidate_less);
  return of_candidates(std::move(candidates), assume_sorted);
}

Front2d Front2d::of_candidates(std::vector<FrontPoint> candidates,
                               assume_sorted_t) {
  Front2d f;
  double best_damage = -1.0;
  for (auto& p : candidates) {
    if (p.value.damage > best_damage) {
      best_damage = p.value.damage;
      f.points_.push_back(std::move(p));
    }
  }
  return f;
}

const FrontPoint* Front2d::max_damage_within_cost(double budget) const {
  const FrontPoint* best = nullptr;
  for (const auto& p : points_) {
    if (p.value.cost > budget) break;  // sorted by cost
    best = &p;                         // damage ascends along the front
  }
  return best;
}

const FrontPoint* Front2d::min_cost_with_damage(double threshold) const {
  for (const auto& p : points_)
    if (p.value.damage >= threshold) return &p;  // first = cheapest
  return nullptr;
}

bool Front2d::same_values(const Front2d& other, double tol) const {
  if (points_.size() != other.points_.size()) return false;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (std::abs(points_[i].value.cost - other.points_[i].value.cost) > tol)
      return false;
    if (std::abs(points_[i].value.damage - other.points_[i].value.damage) >
        tol)
      return false;
  }
  return true;
}

std::string Front2d::to_string() const {
  std::ostringstream out;
  for (const auto& p : points_)
    out << p.value.cost << '\t' << p.value.damage << '\t'
        << p.witness.to_string() << '\n';
  return out.str();
}

}  // namespace atcd
