#pragma once
/// \file bottom_up_prob.hpp
/// Probabilistic bottom-up engine for treelike ATs (paper Sec. IX).
///
/// Identical sweep to the deterministic engine but over PTrip: the third
/// coordinate is the activation probability PS(x,v), combined with
/// p1 * p2 at AND gates and p1 ⋆ p2 = p1 + p2 - p1*p2 at OR gates
/// (children are independent on treelike models).  Note the fronts are
/// typically *larger* than in the deterministic case: attempting redundant
/// children of an OR raises the activation probability, so extra spend can
/// buy expected damage (Example 10).

#include "core/bottom_up_core.hpp"
#include "core/cdat.hpp"
#include "core/opt_result.hpp"
#include "pareto/front2d.hpp"

namespace atcd {

/// CEDPF for treelike probabilistic models (Thm 9).  \p visitor, if any,
/// memoizes per-node fronts and must be bound with budget kNoBudget.
Front2d cedpf_bottom_up(const CdpAt& m,
                        detail::SubtreeVisitor* visitor = nullptr);

/// EDgC for treelike probabilistic models (Thm 8), with min_U pruning.
/// \p visitor, if any, must be bound with the same budget.
OptAttack edgc_bottom_up(const CdpAt& m, double budget,
                         detail::SubtreeVisitor* visitor = nullptr);

/// CgED for treelike probabilistic models, via the full front.
/// \p visitor, if any, must be bound with budget kNoBudget.
OptAttack cged_bottom_up(const CdpAt& m, double threshold,
                         detail::SubtreeVisitor* visitor = nullptr);

}  // namespace atcd
