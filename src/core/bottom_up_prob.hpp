#pragma once
/// \file bottom_up_prob.hpp
/// Probabilistic bottom-up engine for treelike ATs (paper Sec. IX).
///
/// Identical sweep to the deterministic engine but over PTrip: the third
/// coordinate is the activation probability PS(x,v), combined with
/// p1 * p2 at AND gates and p1 ⋆ p2 = p1 + p2 - p1*p2 at OR gates
/// (children are independent on treelike models).  Note the fronts are
/// typically *larger* than in the deterministic case: attempting redundant
/// children of an OR raises the activation probability, so extra spend can
/// buy expected damage (Example 10).

#include "core/cdat.hpp"
#include "core/opt_result.hpp"
#include "pareto/front2d.hpp"

namespace atcd {

/// CEDPF for treelike probabilistic models (Thm 9).
Front2d cedpf_bottom_up(const CdpAt& m);

/// EDgC for treelike probabilistic models (Thm 8), with min_U pruning.
OptAttack edgc_bottom_up(const CdpAt& m, double budget);

/// CgED for treelike probabilistic models, via the full front.
OptAttack cged_bottom_up(const CdpAt& m, double threshold);

}  // namespace atcd
