#pragma once
/// \file enumerative.hpp
/// The enumerative baseline of Sec. X: walk all 2^|B| attacks, score each,
/// and keep the Pareto-optimal ones.  Exact but exponential — this is the
/// "status quo" the paper's methods are measured against, and our oracle
/// for property tests.  All entry points enforce a BAS-count capacity cap
/// (default 26, i.e. 67M attacks) and throw CapacityError beyond it.

#include "core/cdat.hpp"
#include "core/opt_result.hpp"
#include "pareto/front2d.hpp"

namespace atcd {

inline constexpr std::size_t kEnumDefaultCap = 26;

/// CDPF by enumeration.
Front2d cdpf_enumerative(const CdAt& m, std::size_t max_bas = kEnumDefaultCap);

/// CEDPF by enumeration; requires a treelike model (expected damage of a
/// fixed attack is computed with the probabilistic structure function).
/// For DAG models use cedpf_bdd() from bdd/at_bdd.hpp.
Front2d cedpf_enumerative(const CdpAt& m,
                          std::size_t max_bas = kEnumDefaultCap);

/// DgC by enumeration: most damaging attack with ĉ(x) <= budget.
OptAttack dgc_enumerative(const CdAt& m, double budget,
                          std::size_t max_bas = kEnumDefaultCap);

/// CgD by enumeration: cheapest attack with d̂(x) >= threshold.
OptAttack cgd_enumerative(const CdAt& m, double threshold,
                          std::size_t max_bas = kEnumDefaultCap);

/// EDgC by enumeration (treelike models).
OptAttack edgc_enumerative(const CdpAt& m, double budget,
                           std::size_t max_bas = kEnumDefaultCap);

/// CgED by enumeration (treelike models).
OptAttack cged_enumerative(const CdpAt& m, double threshold,
                           std::size_t max_bas = kEnumDefaultCap);

}  // namespace atcd
