#pragma once
/// \file bilp_method.hpp
/// The BILP engine for DAG-like deterministic ATs (paper Sec. VII).
///
/// Bottom-up propagation is unsound on DAGs — shared subtrees get their
/// cost/damage counted twice — so the paper translates cost-damage
/// problems to biobjective integer linear programming.  The two key
/// insights (Thm 6):
///
///  (1) although d̂ is nonlinear in the attack x, it is *linear* in the
///      structure function: d̂(x) = Σ_v d(v) S(x,v); so introduce one
///      binary y_v per node meant to represent S(x,v);
///  (2) y_v <= S(x,v) is expressible linearly:
///        AND v: y_v <= y_w for every child w,
///        OR  v: y_v <= Σ_{w ∈ Ch(v)} y_w,
///      and equality constraints are unnecessary because some optimal
///      solution always saturates y (damages are nonnegative).
///
/// Objectives: minimize (−Σ_v d(v) y_v, Σ_{v∈B} c(v) y_v).
///
/// Works on *any* deterministic model (tree or DAG).  Probabilistic DAGs
/// make the constraints nonlinear (y_v = y_{w1}·y_{w2}) and are out of
/// scope here — see bdd/at_bdd.hpp for the exact exponential fallback.

#include "core/cdat.hpp"
#include "core/opt_result.hpp"
#include "ilp/bilp.hpp"
#include "pareto/front2d.hpp"

namespace atcd {

/// Statistics of a BILP-engine run, surfaced for the benches.
struct BilpRunStats {
  std::size_t ilp_solves = 0;
  std::size_t bnb_nodes = 0;
};

/// Builds the Thm 6 biobjective program for a model.  Variable i of the
/// program is y for node with NodeId i; obj1 = -damage, obj2 = cost.
ilp::BiObjectiveProgram make_bilp(const CdAt& m);

/// CDPF via the ε-constraint sweep over the Thm 6 program.
Front2d cdpf_bilp(const CdAt& m, BilpRunStats* stats = nullptr);

/// DgC via Thm 7: single-objective ILP with the budget row
/// Σ c(v) y_v <= U (cost-lexicographic tie-break for a clean witness).
OptAttack dgc_bilp(const CdAt& m, double budget, BilpRunStats* stats = nullptr);

/// CgD via Thm 7: single-objective ILP with the damage row
/// −Σ d(v) y_v <= −L.  Infeasible when L exceeds the maximal damage.
OptAttack cgd_bilp(const CdAt& m, double threshold,
                   BilpRunStats* stats = nullptr);

}  // namespace atcd
