#pragma once
/// \file cdat.hpp
/// Decorated attack trees:
///
///  * CdAt  (paper Def. 4): an AT with a cost on every BAS and a damage on
///    every node.  Total cost ĉ(x) = Σ_{v∈B} x_v c(v); total damage
///    d̂(x) = Σ_{v∈N} S(x,v) d(v).  Internal nodes deliberately have no
///    cost: Fig. 2 of the paper shows internal costs are expressible via
///    dummy BASs (see with_internal_costs()) while internal damage is not.
///
///  * CdpAt (paper Def. 5): additionally a success probability on every
///    BAS.  The damage of an attack is then a random variable over the
///    actualized attack Y_x (Def. 6); expected_damage() computes
///    d̂_E(x) = E[d̂(Y_x)] in O(|N|+|E|) for treelike models via the
///    probabilistic structure function, and exactly (via the BDD engine or
///    by enumerating actualizations) for DAG models.

#include <vector>

#include "at/attack_tree.hpp"
#include "at/structure.hpp"
#include "util/rng.hpp"

namespace atcd {

/// Cost-damage attack tree (T, c, d).
struct CdAt {
  AttackTree tree;
  std::vector<double> cost;    ///< indexed by BAS index; values >= 0
  std::vector<double> damage;  ///< indexed by NodeId; values >= 0

  /// Validates decoration sizes and non-negativity.  Throws ModelError.
  void validate() const;

  double cost_of(NodeId bas) const { return cost[tree.bas_index(bas)]; }
  double damage_of(NodeId v) const { return damage[v]; }
};

/// Cost-damage-probability attack tree (T, c, d, p).
struct CdpAt {
  AttackTree tree;
  std::vector<double> cost;    ///< per BAS index, >= 0
  std::vector<double> damage;  ///< per NodeId, >= 0
  std::vector<double> prob;    ///< per BAS index, in [0,1]

  void validate() const;

  /// The deterministic model obtained by forgetting probabilities
  /// (equivalently, setting p = 1 everywhere).
  CdAt deterministic() const { return CdAt{tree, cost, damage}; }
};

// ---------------------------------------------------------------------------
// Semantics.
// ---------------------------------------------------------------------------

/// ĉ(x): total cost of an attack (Def. 4).
double total_cost(const CdAt& m, const Attack& x);
double total_cost(const CdpAt& m, const Attack& x);

/// d̂(x): total damage of an attack (Def. 4); sums d(v) over reached nodes.
double total_damage(const CdAt& m, const Attack& x);

/// PS(x,v) = P(S(Y_x, v) = 1) for all v (Sec. IX).  Exact for treelike
/// models (children of a node are independent).  For DAG models this
/// per-node independence assumption breaks; use expected_damage_exact()
/// or the BDD engine instead.  Throws UnsupportedError on DAG input.
std::vector<double> probabilistic_structure(const CdpAt& m, const Attack& x);

/// d̂_E(x) for treelike models, via probabilistic_structure().
double expected_damage(const CdpAt& m, const Attack& x);

/// d̂_E(x) for any model by enumerating all actualizations y ⪯ x of the
/// attempted BASs (Def. 6).  O(2^|x|) — capacity-guarded.
double expected_damage_exact(const CdpAt& m, const Attack& x,
                             std::size_t max_attempted = 24);

/// Samples d̂(Y_x) once (Monte-Carlo helper used in tests/examples).
double sample_damage(const CdpAt& m, const Attack& x, Rng& rng);

// ---------------------------------------------------------------------------
// Model construction helpers.
// ---------------------------------------------------------------------------

/// Implements the Fig. 2 rewrite: a model where *internal* nodes also
/// carry costs is converted into a plain CdAt by giving every costed
/// internal node an extra dummy-BAS child "<name>#cost" holding the cost
/// (an AND gains the child directly; an OR v is rewritten to
/// AND(v', dummy) with v' the original OR).  The resulting model has the
/// same cost-damage semantics, witnessing the paper's claim that internal
/// costs add no expressivity.
/// \p internal_cost is indexed by NodeId (entries for BASs must be 0).
CdAt with_internal_costs(const CdAt& m, const std::vector<double>& internal_cost);

/// Random decoration in the paper's Sec. X ranges: c(v) ∈ {1..10},
/// d(v) ∈ {0..10}, p(v) ∈ {0.1, 0.2, ..., 1.0}.
CdpAt randomize_decorations(const AttackTree& t, Rng& rng);

/// Binarizes the tree (at/transform.hpp) and carries the decorations
/// over: auxiliary gates introduced by the rewrite get zero damage, so
/// the model semantics (ĉ, d̂, d̂_E) are unchanged.  Used to check the
/// native n-ary engines against the paper's binary formulation.
CdAt binarize_model(const CdAt& m);
CdpAt binarize_model(const CdpAt& m);

}  // namespace atcd
