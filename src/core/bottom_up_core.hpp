#pragma once
/// \file bottom_up_core.hpp
/// Shared implementation of the treelike bottom-up engines (Secs. VI & IX).
///
/// The deterministic domain DTrip embeds into the probabilistic domain
/// PTrip by setting every success probability to 1 (the paper uses exactly
/// this reduction to derive Thms 3-4 from Thms 8-10): with p == 1 the
/// AND-combinator p1*p2 and OR-combinator p1 ⋆ p2 = p1+p2-p1*p2 take exact
/// values in {0,1}, so one engine serves both settings with no loss of
/// exactness.  The deterministic/probabilistic front-ends live in
/// bottom_up.hpp / bottom_up_prob.hpp.

#include <vector>

#include "at/attack_tree.hpp"
#include "pareto/front_soa.hpp"
#include "pareto/triple.hpp"

namespace atcd::detail {

/// Per-node memoization hook for the bottom-up sweep.
///
/// The sweep is compositional: the pruned front C^P_U(v) of a node
/// depends only on v's subtree (tree shape plus decorations below v) and
/// the budget — so it can be cached and reused across solves of the same
/// model (incremental sessions, service/session.hpp) and even across
/// *distinct* models that share an isomorphic subtree
/// (service/subtree_cache.hpp keys entries by a canonical subtree hash).
///
/// The sweep consults lookup() before computing a node and offers the
/// computed front to store() afterwards.  Witnesses are exchanged in the
/// host model's full BAS index space; implementations that cache across
/// models translate to/from a canonical subtree-local space internally.
/// A visitor is bound to one (model, budget) pair for one solve call and
/// is used from a single thread.
class SubtreeVisitor {
 public:
  virtual ~SubtreeVisitor() = default;
  /// Returns true and fills *out with node v's pruned front.  *out may
  /// still hold a previous lookup's content on entry (sweeps reuse the
  /// buffer so warm re-solves stay allocation-free); implementations
  /// must overwrite it (assign / clear-then-fill), never append.  On a
  /// miss *out is left unspecified.
  virtual bool lookup(NodeId v, std::vector<AttrTriple>* out) = 0;
  /// Offers node v's computed pruned front for memoization.
  virtual void store(NodeId v, const std::vector<AttrTriple>& front) = 0;

  // -- Optional fast paths (arena sweep).  Overrides must be observably
  // identical to the lookup()/store() pair — same hit/miss decisions,
  // same front values, same side effects (stats, promotions) — so that
  // the two sweeps stay byte- and protocol-equivalent.  The defaults
  // adapt via *scratch, which the caller owns and reuses across calls.

  /// Zero-copy lookup: a pointer to node v's memoized front (valid until
  /// the next call on this visitor), or null on a miss.
  virtual const std::vector<AttrTriple>* lookup_ref(
      NodeId v, std::vector<AttrTriple>* scratch) {
    return lookup(v, scratch) ? scratch : nullptr;
  }

  /// Outcome of lookup_view(): kUnsupported means the visitor has no SoA
  /// storage and the caller must fall back to lookup_ref()/lookup() —
  /// only then, so hit/miss stats are counted exactly once.
  enum class ViewResult { kUnsupported, kMiss, kHit };

  /// SoA-native lookup: on a hit, fills *out with a view of node v's
  /// memoized front (witness stride ceil(nbits / 64) words per row, nbits
  /// being the host model's BAS count; valid until the next call on this
  /// visitor).  Visitors that memoize in SoA form override this so an
  /// arena-sweep hit is a straight column copy — no AoS materialization,
  /// no per-triple pointer chasing.
  virtual ViewResult lookup_view(NodeId /*v*/, TripleView* /*out*/) {
    return ViewResult::kUnsupported;
  }

  /// SoA-side store: \p f holds exactly the front store() would receive,
  /// as parallel columns with ceil(nbits / 64) witness words per row.
  /// Implementations with their own storage convert straight into it,
  /// skipping the intermediate AoS materialization.
  virtual void store_soa(NodeId v, const TripleView& f, std::size_t nbits,
                         std::vector<AttrTriple>* scratch) {
    view_to_aos_into(f, nbits, scratch);
    store(v, *scratch);
  }
};

/// Options for the bottom-up sweep, mostly exercised by ablation benches.
struct BottomUpOptions {
  double budget = kNoBudget;  ///< min_U cost pruning (Thm 3 / Thm 8)
  bool quadratic_prune = false;  ///< use the O(n^2) reference pruner
  /// Ablation A1: drop the third triple coordinate when pruning
  /// (deliberately UNSOUND, reproduces the failure mode of Example 4).
  bool ignore_activation = false;
  /// Forces the recursive pointer-chasing sweep over AoS fronts instead of
  /// the arena/SoA stack machine (bottom_up_arena.cpp).  Both produce
  /// byte-identical fronts; the flag exists as the baseline leg of the
  /// arena-vs-pointer bench and the equivalence property test.  The
  /// ablation flags above imply it (their code paths live only in the
  /// pointer sweep).
  bool pointer_path = false;
  /// Per-node memo consulted/populated by the sweep; ignored when the
  /// unsound ignore_activation ablation is active (its fronts must never
  /// leak into a cache).  The visitor must have been bound to the same
  /// (tree, decorations, budget) this sweep runs with.
  SubtreeVisitor* visitor = nullptr;
};

/// Computes C^P_U(v) for v = root: the incomplete Pareto front of
/// attribute triples (cost, expected damage, activation probability) over
/// all attacks on the tree, budget-pruned and ⊑-minimized at every node.
/// Witnesses are attacks over the full BAS index space.
///
/// Preconditions: tree finalized and treelike; decoration sizes match.
/// Throws UnsupportedError on DAG input.
std::vector<AttrTriple> bottom_up_root_front(const AttackTree& tree,
                                             const std::vector<double>& cost,
                                             const std::vector<double>& damage,
                                             const std::vector<double>& prob,
                                             const BottomUpOptions& opt = {});

/// The arena/SoA hot path behind bottom_up_root_front() (the default
/// unless an option forces the pointer sweep): flattens the tree into a
/// post-order arena and runs a non-recursive stack machine over SoA
/// fronts.  Same preconditions, same result, byte for byte — including
/// the SubtreeVisitor call protocol (pre-order lookup, post-order store,
/// memo-hit subtrees never descended into).  bottom_up_arena.cpp.
std::vector<AttrTriple> bottom_up_root_front_arena(
    const AttackTree& tree, const std::vector<double>& cost,
    const std::vector<double>& damage, const std::vector<double>& prob,
    const BottomUpOptions& opt = {});

}  // namespace atcd::detail
