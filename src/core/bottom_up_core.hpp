#pragma once
/// \file bottom_up_core.hpp
/// Shared implementation of the treelike bottom-up engines (Secs. VI & IX).
///
/// The deterministic domain DTrip embeds into the probabilistic domain
/// PTrip by setting every success probability to 1 (the paper uses exactly
/// this reduction to derive Thms 3-4 from Thms 8-10): with p == 1 the
/// AND-combinator p1*p2 and OR-combinator p1 ⋆ p2 = p1+p2-p1*p2 take exact
/// values in {0,1}, so one engine serves both settings with no loss of
/// exactness.  The deterministic/probabilistic front-ends live in
/// bottom_up.hpp / bottom_up_prob.hpp.

#include <vector>

#include "at/attack_tree.hpp"
#include "pareto/triple.hpp"

namespace atcd::detail {

/// Per-node memoization hook for the bottom-up sweep.
///
/// The sweep is compositional: the pruned front C^P_U(v) of a node
/// depends only on v's subtree (tree shape plus decorations below v) and
/// the budget — so it can be cached and reused across solves of the same
/// model (incremental sessions, service/session.hpp) and even across
/// *distinct* models that share an isomorphic subtree
/// (service/subtree_cache.hpp keys entries by a canonical subtree hash).
///
/// The sweep consults lookup() before computing a node and offers the
/// computed front to store() afterwards.  Witnesses are exchanged in the
/// host model's full BAS index space; implementations that cache across
/// models translate to/from a canonical subtree-local space internally.
/// A visitor is bound to one (model, budget) pair for one solve call and
/// is used from a single thread.
class SubtreeVisitor {
 public:
  virtual ~SubtreeVisitor() = default;
  /// Returns true and fills *out with node v's pruned front.
  virtual bool lookup(NodeId v, std::vector<AttrTriple>* out) = 0;
  /// Offers node v's computed pruned front for memoization.
  virtual void store(NodeId v, const std::vector<AttrTriple>& front) = 0;
};

/// Options for the bottom-up sweep, mostly exercised by ablation benches.
struct BottomUpOptions {
  double budget = kNoBudget;  ///< min_U cost pruning (Thm 3 / Thm 8)
  bool quadratic_prune = false;  ///< use the O(n^2) reference pruner
  /// Ablation A1: drop the third triple coordinate when pruning
  /// (deliberately UNSOUND, reproduces the failure mode of Example 4).
  bool ignore_activation = false;
  /// Per-node memo consulted/populated by the sweep; ignored when the
  /// unsound ignore_activation ablation is active (its fronts must never
  /// leak into a cache).  The visitor must have been bound to the same
  /// (tree, decorations, budget) this sweep runs with.
  SubtreeVisitor* visitor = nullptr;
};

/// Computes C^P_U(v) for v = root: the incomplete Pareto front of
/// attribute triples (cost, expected damage, activation probability) over
/// all attacks on the tree, budget-pruned and ⊑-minimized at every node.
/// Witnesses are attacks over the full BAS index space.
///
/// Preconditions: tree finalized and treelike; decoration sizes match.
/// Throws UnsupportedError on DAG input.
std::vector<AttrTriple> bottom_up_root_front(const AttackTree& tree,
                                             const std::vector<double>& cost,
                                             const std::vector<double>& damage,
                                             const std::vector<double>& prob,
                                             const BottomUpOptions& opt = {});

}  // namespace atcd::detail
