#include "core/knapsack.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "core/bottom_up.hpp"

namespace atcd {

CdAt knapsack_to_cdat(const KnapsackInstance& inst) {
  if (inst.value.size() != inst.weight.size())
    throw ModelError("knapsack_to_cdat: value/weight size mismatch");
  if (inst.value.empty())
    throw ModelError("knapsack_to_cdat: empty instance");
  CdAt m;
  std::vector<NodeId> items;
  for (std::size_t i = 0; i < inst.value.size(); ++i) {
    items.push_back(m.tree.add_bas("item" + std::to_string(i)));
    m.cost.push_back(inst.weight[i]);
  }
  const NodeId root = m.tree.add_gate(NodeType::AND, "knapsack", items);
  m.tree.set_root(root);
  m.tree.finalize();
  m.damage.assign(m.tree.node_count(), 0.0);
  for (std::size_t i = 0; i < items.size(); ++i)
    m.damage[items[i]] = inst.value[i];
  m.validate();
  return m;
}

OptAttack solve_knapsack_via_at(const KnapsackInstance& inst) {
  return dgc_bottom_up(knapsack_to_cdat(inst), inst.capacity);
}

OptAttack solve_knapsack_bruteforce(const KnapsackInstance& inst) {
  const std::size_t n = inst.value.size();
  if (n > 26) throw CapacityError("solve_knapsack_bruteforce: too many items");
  OptAttack best;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    double w = 0.0, v = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      if (mask >> i & 1) {
        w += inst.weight[i];
        v += inst.value[i];
      }
    if (w > inst.capacity) continue;
    if (!best.feasible || v > best.damage ||
        (v == best.damage && w < best.cost)) {
      best = OptAttack{true, w, v, DynBitset::from_mask(n, mask)};
    }
  }
  return best;
}

namespace {

/// Branch-and-bound state over items sorted by value density.
struct KnapsackBnb {
  struct Item {
    double value, weight;
    std::size_t index;  ///< position in the original instance
  };
  std::vector<Item> items;
  double capacity = 0.0;
  bool feasible = false;
  double best_value = 0.0, best_weight = 0.0;
  std::vector<char> chosen, best;

  /// Fractional-relaxation bound on the value reachable from depth k.
  double bound(std::size_t k, double weight, double value) const {
    double room = capacity - weight, total = value;
    for (std::size_t i = k; i < items.size(); ++i) {
      if (items[i].weight <= room) {
        room -= items[i].weight;
        total += items[i].value;
      } else {
        if (items[i].weight > 0.0)
          total += items[i].value * (room / items[i].weight);
        break;
      }
    }
    return total;
  }

  void dfs(std::size_t k, double weight, double value) {
    if (weight <= capacity &&
        (!feasible || value > best_value ||
         (value == best_value && weight < best_weight))) {
      feasible = true;
      best_value = value;
      best_weight = weight;
      best = chosen;
    }
    if (k == items.size()) return;
    if (feasible && bound(k, weight, value) + 1e-12 < best_value) return;
    if (weight + items[k].weight <= capacity) {
      chosen[k] = 1;
      dfs(k + 1, weight + items[k].weight, value + items[k].value);
      chosen[k] = 0;
    }
    dfs(k + 1, weight, value);
  }
};

}  // namespace

OptAttack solve_knapsack(const KnapsackInstance& inst) {
  if (inst.value.size() != inst.weight.size())
    throw ModelError("solve_knapsack: value/weight size mismatch");
  const std::size_t n = inst.value.size();
  KnapsackBnb bnb;
  bnb.capacity = inst.capacity;
  bnb.items.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    bnb.items.push_back({inst.value[i], inst.weight[i], i});
  // Density-descending order (cross-multiplied to handle zero weights:
  // zero-weight positive-value items sort first).
  std::stable_sort(bnb.items.begin(), bnb.items.end(),
                   [](const KnapsackBnb::Item& a, const KnapsackBnb::Item& b) {
                     return a.value * b.weight > b.value * a.weight;
                   });
  bnb.chosen.assign(n, 0);
  bnb.best.assign(n, 0);
  bnb.dfs(0, 0.0, 0.0);
  if (!bnb.feasible) return OptAttack{};
  OptAttack out{true, bnb.best_weight, bnb.best_value, DynBitset(n)};
  for (std::size_t k = 0; k < n; ++k)
    if (bnb.best[k]) out.witness.set(bnb.items[k].index);
  return out;
}

OptAttack solve_knapsack_cover(const KnapsackInstance& inst, double target) {
  if (inst.value.size() != inst.weight.size())
    throw ModelError("solve_knapsack_cover: value/weight size mismatch");
  const std::size_t n = inst.value.size();
  double total_value = 0.0, total_weight = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total_value += inst.value[i];
    total_weight += inst.weight[i];
  }
  if (target > total_value) return OptAttack{};  // unreachable value
  if (target <= 0.0) return OptAttack{true, 0.0, 0.0, DynBitset(n)};
  // Complement: drop the heaviest item set whose value stays <= slack.
  KnapsackInstance comp{inst.weight, inst.value, total_value - target};
  const OptAttack dropped = solve_knapsack(comp);
  OptAttack out{true, total_weight - dropped.damage,
                total_value - dropped.cost, DynBitset(n)};
  for (std::size_t i = 0; i < n; ++i)
    out.witness.set(i, !dropped.witness.test(i));
  return out;
}

CdAt nondecreasing_to_cdat(std::size_t n,
                           const std::function<double(std::uint64_t)>& f,
                           const std::vector<double>& cost) {
  if (n == 0 || n > 20)
    throw ModelError("nondecreasing_to_cdat: need 1 <= n <= 20");
  if (cost.size() != n)
    throw ModelError("nondecreasing_to_cdat: cost size mismatch");
  const std::uint64_t total = std::uint64_t{1} << n;

  // Validate f and capture its table.
  std::vector<double> table(total);
  for (std::uint64_t mask = 0; mask < total; ++mask) table[mask] = f(mask);
  if (table[0] != 0.0)
    throw ModelError("nondecreasing_to_cdat: f(empty set) must be 0");
  for (std::uint64_t mask = 0; mask < total; ++mask) {
    if (table[mask] < 0.0)
      throw ModelError("nondecreasing_to_cdat: f must be nonnegative");
    for (std::size_t i = 0; i < n; ++i) {
      if (!(mask >> i & 1)) continue;
      if (table[mask ^ (std::uint64_t{1} << i)] > table[mask])
        throw ModelError("nondecreasing_to_cdat: f is not nondecreasing");
    }
  }

  // Order the subsets so that f is nondecreasing AND the order extends ⪯:
  // sort by (f value, popcount, mask).  If x ⪯ y then f(x) <= f(y)
  // (monotonicity) and popcount(x) <= popcount(y), so x precedes y.
  std::vector<std::uint64_t> order(total);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::uint64_t a, std::uint64_t b) {
    if (table[a] != table[b]) return table[a] < table[b];
    const int pa = std::popcount(a), pb = std::popcount(b);
    if (pa != pb) return pa < pb;
    return a < b;
  });
  // order[0] is the empty set (f = 0, popcount 0).

  CdAt m;
  std::vector<NodeId> bas(n);
  for (std::size_t i = 0; i < n; ++i) {
    bas[i] = m.tree.add_bas("x" + std::to_string(i));
    m.cost.push_back(cost[i]);
  }
  // A_i = AND of the BASs in the i-th subset (skipped for the empty set:
  // the paper's empty AND is identically true, see header).
  std::vector<NodeId> a_nodes(total, kNoNode);
  for (std::uint64_t k = 1; k < total; ++k) {
    const std::uint64_t mask = order[k];
    std::vector<NodeId> cs;
    for (std::size_t i = 0; i < n; ++i)
      if (mask >> i & 1) cs.push_back(bas[i]);
    a_nodes[k] = m.tree.add_gate(NodeType::AND, "A" + std::to_string(k), cs);
  }
  // O_j = OR(A_i | i >= j), for j = 1..total-1 (O_0 would be identically
  // true and carries damage f(order[0]) = 0, so it is dropped).
  std::vector<NodeId> o_nodes;
  std::vector<double> o_damage;
  for (std::uint64_t j = 1; j < total; ++j) {
    std::vector<NodeId> cs;
    for (std::uint64_t i = j; i < total; ++i) cs.push_back(a_nodes[i]);
    o_nodes.push_back(
        m.tree.add_gate(NodeType::OR, "O" + std::to_string(j), cs));
    o_damage.push_back(table[order[j]] - table[order[j - 1]]);
  }
  const NodeId root = m.tree.add_gate(NodeType::AND, "root", o_nodes);
  m.tree.set_root(root);
  m.tree.finalize();
  m.damage.assign(m.tree.node_count(), 0.0);
  for (std::size_t j = 0; j < o_nodes.size(); ++j)
    m.damage[o_nodes[j]] = o_damage[j];
  m.validate();
  return m;
}

}  // namespace atcd
