#include "core/bottom_up.hpp"

#include "core/bottom_up_prob.hpp"

namespace atcd {
namespace detail {
namespace {

std::vector<AttrTriple> prune(std::vector<AttrTriple> xs,
                              const BottomUpOptions& opt) {
  if (opt.ignore_activation) {
    // Ablation A1: forget the activation coordinate before minimizing.
    // This reproduces the unsound "naive 2-D propagation" of Example 4.
    for (auto& x : xs) x.t.act = 0.0;
  }
  return opt.quadratic_prune ? prune_min_quadratic(std::move(xs), opt.budget)
                             : prune_min(std::move(xs), opt.budget);
}

/// Combines the fronts of two disjoint sub-ATs (eqs. (4), (5), (8)-(10)):
/// costs and damages add; activations combine by the gate operator.  The
/// parent's own damage is NOT added here — the caller adds it once after
/// folding all children.
std::vector<AttrTriple> combine(const std::vector<AttrTriple>& a,
                                const std::vector<AttrTriple>& b,
                                NodeType gate) {
  std::vector<AttrTriple> out;
  out.reserve(a.size() * b.size());
  for (const auto& x : a) {
    for (const auto& y : b) {
      const double act = gate == NodeType::AND
                             ? x.t.act * y.t.act
                             : x.t.act + y.t.act - x.t.act * y.t.act;
      AttrTriple z;
      z.t = Triple{x.t.cost + y.t.cost, x.t.damage + y.t.damage, act};
      z.witness = x.witness;
      z.witness |= y.witness;
      out.push_back(std::move(z));
    }
  }
  return out;
}

struct Sweep {
  const AttackTree& tree;
  const std::vector<double>& cost;
  const std::vector<double>& damage;
  const std::vector<double>& prob;
  const BottomUpOptions& opt;

  std::vector<AttrTriple> at(NodeId v) const {
    std::vector<AttrTriple> memoized;
    if (opt.visitor && opt.visitor->lookup(v, &memoized)) return memoized;
    std::vector<AttrTriple> r = compute(v);
    if (opt.visitor) opt.visitor->store(v, r);
    return r;
  }

  std::vector<AttrTriple> compute(NodeId v) const {
    const auto& n = tree.node(v);
    if (n.type == NodeType::BAS) {
      std::vector<AttrTriple> r;
      r.push_back({Triple{0.0, 0.0, 0.0}, Attack(tree.bas_count())});
      const double c = cost[n.bas_index];
      if (c <= opt.budget) {
        const double p = prob[n.bas_index];
        Attack w(tree.bas_count());
        w.set(n.bas_index);
        r.push_back({Triple{c, p * damage[v], p}, std::move(w)});
      }
      return prune(std::move(r), opt);
    }
    // Fold the children left to right; pruning between folds is sound
    // because the remaining combinators are monotone in every coordinate.
    std::vector<AttrTriple> acc = at(n.children[0]);
    for (std::size_t i = 1; i < n.children.size(); ++i)
      acc = prune(combine(acc, at(n.children[i]), n.type), opt);
    // Add this node's own damage, weighted by its activation (det.: 0/1).
    for (auto& x : acc) x.t.damage += x.t.act * damage[v];
    return prune(std::move(acc), opt);
  }
};

}  // namespace

std::vector<AttrTriple> bottom_up_root_front(const AttackTree& tree,
                                             const std::vector<double>& cost,
                                             const std::vector<double>& damage,
                                             const std::vector<double>& prob,
                                             const BottomUpOptions& opt) {
  if (!tree.finalized())
    throw ModelError("bottom_up: tree not finalized");
  if (!tree.is_treelike())
    throw UnsupportedError(
        "bottom_up: model is DAG-shaped; sub-AT attack spaces are not "
        "disjoint, use the BILP engine (deterministic) or the BDD engine "
        "(probabilistic) instead");
  if (opt.ignore_activation && opt.visitor) {
    // Never let the unsound ablation's fronts reach (or read) a memo.
    BottomUpOptions sanitized = opt;
    sanitized.visitor = nullptr;
    return Sweep{tree, cost, damage, prob, sanitized}.at(tree.root());
  }
  // The ablation options only exist on the recursive sweep; everything
  // else runs the arena/SoA stack machine (byte-identical results, see
  // bottom_up_arena.cpp).
  if (opt.pointer_path || opt.quadratic_prune || opt.ignore_activation)
    return Sweep{tree, cost, damage, prob, opt}.at(tree.root());
  return bottom_up_root_front_arena(tree, cost, damage, prob, opt);
}

}  // namespace detail

namespace {

Front2d project_front(std::vector<AttrTriple> triples) {
  std::vector<FrontPoint> cands;
  cands.reserve(triples.size());
  for (auto& t : triples)
    cands.push_back({CdPoint{t.t.cost, t.t.damage}, std::move(t.witness)});
  return Front2d::of_candidates(std::move(cands));
}

OptAttack best_damage(std::vector<AttrTriple> triples) {
  OptAttack best;
  for (auto& t : triples) {
    if (!best.feasible || t.t.damage > best.damage ||
        (t.t.damage == best.damage && t.t.cost < best.cost)) {
      best = OptAttack{true, t.t.cost, t.t.damage, std::move(t.witness)};
    }
  }
  return best;
}

OptAttack from_front_point(const FrontPoint* p) {
  if (!p) return {};
  return OptAttack{true, p->value.cost, p->value.damage, p->witness};
}

std::vector<double> unit_probs(const AttackTree& t) {
  return std::vector<double>(t.bas_count(), 1.0);
}

}  // namespace

Front2d cdpf_bottom_up(const CdAt& m, detail::SubtreeVisitor* visitor) {
  m.validate();
  detail::BottomUpOptions opt;
  opt.visitor = visitor;
  return project_front(detail::bottom_up_root_front(
      m.tree, m.cost, m.damage, unit_probs(m.tree), opt));
}

OptAttack dgc_bottom_up(const CdAt& m, double budget,
                        detail::SubtreeVisitor* visitor) {
  m.validate();
  detail::BottomUpOptions opt;
  opt.budget = budget;
  opt.visitor = visitor;
  return best_damage(detail::bottom_up_root_front(m.tree, m.cost, m.damage,
                                                  unit_probs(m.tree), opt));
}

OptAttack cgd_bottom_up(const CdAt& m, double threshold,
                        detail::SubtreeVisitor* visitor) {
  return from_front_point(
      cdpf_bottom_up(m, visitor).min_cost_with_damage(threshold));
}

Front2d cedpf_bottom_up(const CdpAt& m, detail::SubtreeVisitor* visitor) {
  m.validate();
  detail::BottomUpOptions opt;
  opt.visitor = visitor;
  return project_front(
      detail::bottom_up_root_front(m.tree, m.cost, m.damage, m.prob, opt));
}

OptAttack edgc_bottom_up(const CdpAt& m, double budget,
                         detail::SubtreeVisitor* visitor) {
  m.validate();
  detail::BottomUpOptions opt;
  opt.budget = budget;
  opt.visitor = visitor;
  return best_damage(
      detail::bottom_up_root_front(m.tree, m.cost, m.damage, m.prob, opt));
}

OptAttack cged_bottom_up(const CdpAt& m, double threshold,
                         detail::SubtreeVisitor* visitor) {
  return from_front_point(
      cedpf_bottom_up(m, visitor).min_cost_with_damage(threshold));
}

}  // namespace atcd
