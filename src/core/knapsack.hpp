#pragma once
/// \file knapsack.hpp
/// The two reductions of Sec. V relating cost-damage analysis to binary
/// knapsack problems.
///
///  * Thm 1 (hardness): every binary knapsack decision problem embeds into
///    a cd-AT of linear size — n BASs with c = weight, d = value, under a
///    zero-damage AND root — so CDDP (and hence CDPF/DgC/CgD) is
///    NP-complete even for treelike ATs.  knapsack_to_cdat() builds the
///    embedding; solving DgC with budget = capacity solves the knapsack.
///
///  * Thm 2 (expressivity): *every* nondecreasing f : B^X -> R_{>=0} with
///    f(∅) = 0 arises as the damage function d̂ of some cd-AT, so knapsack
///    heuristics for quadratic/cubic/submodular objectives cannot cover
///    cost-damage analysis.  nondecreasing_to_cdat() implements the
///    constructive proof (the A_i / O_j two-layer construction).
///    (f(∅) = 0 is forced by the semantics: d̂(∅) = 0 in every cd-AT; the
///    empty-AND gate the paper's proof uses for x¹ = ∅ is equivalent.)

#include <cstdint>
#include <functional>
#include <vector>

#include "core/cdat.hpp"
#include "core/opt_result.hpp"

namespace atcd {

/// A 0/1 knapsack instance: maximize Σ value_i x_i s.t. Σ weight_i x_i <= capacity.
struct KnapsackInstance {
  std::vector<double> value;   ///< >= 0
  std::vector<double> weight;  ///< >= 0
  double capacity = 0.0;
};

/// Thm 1 embedding: BASs v_i with c(v_i) = weight_i, d(v_i) = value_i,
/// root = AND(v_1..v_n) with d(root) = 0.
CdAt knapsack_to_cdat(const KnapsackInstance& inst);

/// Solves the knapsack by running DgC (bottom-up engine) on the Thm 1
/// embedding with budget = capacity.  The witness bits are the chosen items.
OptAttack solve_knapsack_via_at(const KnapsackInstance& inst);

/// Reference O(2^n) knapsack solver for cross-checks.
OptAttack solve_knapsack_bruteforce(const KnapsackInstance& inst);

/// Exact 0/1 knapsack by branch and bound: density-sorted DFS with the
/// fractional-relaxation upper bound.  Unlike the brute-force reference
/// this has no item cap — worst case is still exponential but pruning
/// makes realistic instances fast.  Ties (equal value) resolve to the
/// lighter selection.  Result fields: cost = Σ chosen weights, damage =
/// Σ chosen values, witness bit i = item i chosen.  Infeasible only when
/// capacity < 0 (the empty selection is otherwise always feasible).
/// This also powers the "knapsack" engine backend on additive models
/// (every internal node damage 0), where DgC *is* a knapsack.
OptAttack solve_knapsack(const KnapsackInstance& inst);

/// Covering variant: minimize Σ weight_i x_i subject to Σ value_i x_i >=
/// target — CgD on an additive model.  Solved by complementation: with
/// y = 1 - x it becomes max Σ weight_i y_i s.t. Σ value_i y_i <= Σ value
/// - target, a plain knapsack.  Infeasible iff target > Σ value.
OptAttack solve_knapsack_cover(const KnapsackInstance& inst, double target);

/// Thm 2 construction for f given as a truth-table over n <= 20 items:
/// f(mask) is the value of the subset encoded by mask.  Requirements
/// checked: f nondecreasing w.r.t. ⊆, f >= 0, f(0) = 0.  The i-th BAS
/// gets cost cost[i] (damage 0).  The resulting model has 2^{n+1} + n - 1
/// nodes and satisfies total_damage == f on every attack.
CdAt nondecreasing_to_cdat(std::size_t n,
                           const std::function<double(std::uint64_t)>& f,
                           const std::vector<double>& cost);

}  // namespace atcd
