#pragma once
/// \file problems.hpp
/// Unified front-end for the six cost-damage problems of the paper.
///
/// Dispatch goes through the engine subsystem (engine/planner.hpp): every
/// registered backend advertises which Table I cells it covers, and
/// Engine::Auto asks the planner for the strongest applicable one — by
/// default exactly the paper's choices, extended by our BDD fallback for
/// its open problem:
///
///                 | treelike            | DAG-like
///   deterministic | bottom-up (Thm 4)   | BILP (Thm 6)
///   probabilistic | bottom-up (Thm 9)   | BDD + enumeration (exact,
///                 |                     |   exponential, capacity-guarded)
///
/// Explicit engines are available for cross-validation and benchmarks;
/// beyond the exact methods above these include the NSGA-II approximation
/// (any model class) and the exact knapsack branch-and-bound (additive
/// models, single-objective problems only).  Engines not applicable to
/// the requested problem/model class throw UnsupportedError naming the
/// missing capability.  For registry lookups by string name, custom
/// selection policies, and the batch API see engine/registry.hpp,
/// engine/planner.hpp and engine/batch.hpp.

#include "core/cdat.hpp"
#include "core/opt_result.hpp"
#include "pareto/front2d.hpp"

namespace atcd {

/// Convenience handles for the registered backends.  The authoritative
/// list lives in the engine registry — to_string(Engine) is exactly the
/// registered name, so new engines are usable by name without extending
/// this enum.
enum class Engine {
  Auto,         ///< planner's choice (see table above)
  Enumerative,  ///< 2^|B| baseline (Sec. X), capacity-guarded
  BottomUp,     ///< treelike only (Thms 3-4, 8-9)
  Bilp,         ///< deterministic only (Thms 6-7)
  Bdd,          ///< exact probabilistic DAG fallback, capacity-guarded
  Nsga2,        ///< genetic approximation, any model class
  Knapsack,     ///< exact branch-and-bound, additive models, DgC/CgD only
};

const char* to_string(Engine e);

/// CDPF: the cost-damage Pareto front  min ⊑ (ĉ, d̂)(A).
Front2d cdpf(const CdAt& m, Engine engine = Engine::Auto);

/// DgC: max d̂(x) subject to ĉ(x) <= budget.
OptAttack dgc(const CdAt& m, double budget, Engine engine = Engine::Auto);

/// CgD: min ĉ(x) subject to d̂(x) >= threshold.  Infeasible result when
/// threshold exceeds the maximal damage.
OptAttack cgd(const CdAt& m, double threshold, Engine engine = Engine::Auto);

/// CEDPF: the cost-expected-damage Pareto front  min ⊑ (ĉ, d̂_E)(A).
Front2d cedpf(const CdpAt& m, Engine engine = Engine::Auto);

/// EDgC: max d̂_E(x) subject to ĉ(x) <= budget.
OptAttack edgc(const CdpAt& m, double budget, Engine engine = Engine::Auto);

/// CgED: min ĉ(x) subject to d̂_E(x) >= threshold.
OptAttack cged(const CdpAt& m, double threshold,
               Engine engine = Engine::Auto);

}  // namespace atcd
