#pragma once
/// \file problems.hpp
/// Unified front-end for the six cost-damage problems of the paper.
///
/// Engine::Auto picks the strongest applicable method (Table I of the
/// paper, extended by our BDD fallback for its open problem):
///
///                 | treelike            | DAG-like
///   deterministic | bottom-up (Thm 4)   | BILP (Thm 6)
///   probabilistic | bottom-up (Thm 9)   | BDD + enumeration (exact,
///                 |                     |   exponential, capacity-guarded)
///
/// Explicit engines are available for cross-validation and benchmarks.

#include "core/cdat.hpp"
#include "core/opt_result.hpp"
#include "pareto/front2d.hpp"

namespace atcd {

enum class Engine {
  Auto,         ///< strongest applicable method (see table above)
  Enumerative,  ///< 2^|B| baseline (Sec. X), capacity-guarded
  BottomUp,     ///< treelike only (Thms 3-4, 8-9)
  Bilp,         ///< deterministic only (Thms 6-7)
  Bdd,          ///< exact probabilistic DAG fallback, capacity-guarded
};

const char* to_string(Engine e);

/// CDPF: the cost-damage Pareto front  min ⊑ (ĉ, d̂)(A).
Front2d cdpf(const CdAt& m, Engine engine = Engine::Auto);

/// DgC: max d̂(x) subject to ĉ(x) <= budget.
OptAttack dgc(const CdAt& m, double budget, Engine engine = Engine::Auto);

/// CgD: min ĉ(x) subject to d̂(x) >= threshold.  Infeasible result when
/// threshold exceeds the maximal damage.
OptAttack cgd(const CdAt& m, double threshold, Engine engine = Engine::Auto);

/// CEDPF: the cost-expected-damage Pareto front  min ⊑ (ĉ, d̂_E)(A).
Front2d cedpf(const CdpAt& m, Engine engine = Engine::Auto);

/// EDgC: max d̂_E(x) subject to ĉ(x) <= budget.
OptAttack edgc(const CdpAt& m, double budget, Engine engine = Engine::Auto);

/// CgED: min ĉ(x) subject to d̂_E(x) >= threshold.
OptAttack cged(const CdpAt& m, double threshold,
               Engine engine = Engine::Auto);

}  // namespace atcd
