#pragma once
/// \file bottom_up.hpp
/// Deterministic bottom-up engine for treelike ATs (paper Sec. VI).
///
/// The key insight (Thms 3-4): propagate Pareto fronts of attribute
/// *triples* (cost, damage, root-reached) per node — the third coordinate
/// keeps attacks alive that are locally non-optimal but can still unlock
/// damage at ancestors (Example 4).  At the root, project to (cost,
/// damage) and minimize again.
///
/// Complexity is O(2^|B|) in the worst case (Thm 5, unavoidable: the front
/// itself can have 2^|B| points, Example 6), but pruning at every node
/// makes it fast on realistic models — the paper measures < 0.1 s where
/// enumeration takes 34 h.

#include "core/bottom_up_core.hpp"
#include "core/cdat.hpp"
#include "core/opt_result.hpp"
#include "pareto/front2d.hpp"

namespace atcd {

/// CDPF for treelike deterministic models (Thm 4).  The optional
/// \p visitor memoizes per-node fronts (see detail::SubtreeVisitor); it
/// must be bound to this model with budget kNoBudget.
Front2d cdpf_bottom_up(const CdAt& m,
                       detail::SubtreeVisitor* visitor = nullptr);

/// DgC for treelike deterministic models (Thm 3): attacks whose cost
/// exceeds the budget are discarded at every node (min_U), which shrinks
/// the propagated fronts — the full front is still required, a single
/// best-attack propagation is unsound (Sec. VI-B).  \p visitor, if any,
/// must be bound with the same budget.
OptAttack dgc_bottom_up(const CdAt& m, double budget,
                        detail::SubtreeVisitor* visitor = nullptr);

/// CgD for treelike deterministic models: needs the complete front —
/// under-threshold attacks cannot be discarded early (Sec. VI-B/C) — so
/// this computes CDPF and applies eq. (2).  \p visitor, if any, must be
/// bound with budget kNoBudget (the shared entries are exactly CDPF's).
OptAttack cgd_bottom_up(const CdAt& m, double threshold,
                        detail::SubtreeVisitor* visitor = nullptr);

}  // namespace atcd
