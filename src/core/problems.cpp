#include "core/problems.hpp"

#include "bdd/at_bdd.hpp"
#include "core/bilp_method.hpp"
#include "core/bottom_up.hpp"
#include "core/bottom_up_prob.hpp"
#include "core/enumerative.hpp"

namespace atcd {
namespace {

[[noreturn]] void bad_engine(const char* problem, Engine e) {
  throw UnsupportedError(std::string(problem) + ": engine '" + to_string(e) +
                         "' does not apply to this problem/model class");
}

Engine pick_det(const CdAt& m, Engine e) {
  if (e != Engine::Auto) return e;
  return m.tree.is_treelike() ? Engine::BottomUp : Engine::Bilp;
}

Engine pick_prob(const CdpAt& m, Engine e) {
  if (e != Engine::Auto) return e;
  return m.tree.is_treelike() ? Engine::BottomUp : Engine::Bdd;
}

}  // namespace

const char* to_string(Engine e) {
  switch (e) {
    case Engine::Auto:
      return "auto";
    case Engine::Enumerative:
      return "enumerative";
    case Engine::BottomUp:
      return "bottom-up";
    case Engine::Bilp:
      return "bilp";
    case Engine::Bdd:
      return "bdd";
  }
  return "?";
}

Front2d cdpf(const CdAt& m, Engine engine) {
  switch (pick_det(m, engine)) {
    case Engine::Enumerative:
      return cdpf_enumerative(m);
    case Engine::BottomUp:
      return cdpf_bottom_up(m);
    case Engine::Bilp:
      return cdpf_bilp(m);
    default:
      bad_engine("cdpf", engine);
  }
}

OptAttack dgc(const CdAt& m, double budget, Engine engine) {
  switch (pick_det(m, engine)) {
    case Engine::Enumerative:
      return dgc_enumerative(m, budget);
    case Engine::BottomUp:
      return dgc_bottom_up(m, budget);
    case Engine::Bilp:
      return dgc_bilp(m, budget);
    default:
      bad_engine("dgc", engine);
  }
}

OptAttack cgd(const CdAt& m, double threshold, Engine engine) {
  switch (pick_det(m, engine)) {
    case Engine::Enumerative:
      return cgd_enumerative(m, threshold);
    case Engine::BottomUp:
      return cgd_bottom_up(m, threshold);
    case Engine::Bilp:
      return cgd_bilp(m, threshold);
    default:
      bad_engine("cgd", engine);
  }
}

Front2d cedpf(const CdpAt& m, Engine engine) {
  switch (pick_prob(m, engine)) {
    case Engine::Enumerative:
      return cedpf_enumerative(m);
    case Engine::BottomUp:
      return cedpf_bottom_up(m);
    case Engine::Bdd:
      return cedpf_bdd(m);
    default:
      bad_engine("cedpf", engine);
  }
}

OptAttack edgc(const CdpAt& m, double budget, Engine engine) {
  switch (pick_prob(m, engine)) {
    case Engine::Enumerative:
      return edgc_enumerative(m, budget);
    case Engine::BottomUp:
      return edgc_bottom_up(m, budget);
    case Engine::Bdd:
      return edgc_bdd(m, budget);
    default:
      bad_engine("edgc", engine);
  }
}

OptAttack cged(const CdpAt& m, double threshold, Engine engine) {
  switch (pick_prob(m, engine)) {
    case Engine::Enumerative:
      return cged_enumerative(m, threshold);
    case Engine::BottomUp:
      return cged_bottom_up(m, threshold);
    case Engine::Bdd:
      return cged_bdd(m, threshold);
    default:
      bad_engine("cged", engine);
  }
}

}  // namespace atcd
