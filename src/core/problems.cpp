#include "core/problems.hpp"

#include "engine/planner.hpp"

namespace atcd {
namespace {

/// Resolves an Engine handle against the default registry: Auto goes to
/// the planner (Table I policy), everything else is an explicit request
/// validated against the backend's capabilities.
const engine::Backend& route(Engine e, engine::Problem p,
                             const engine::Traits& t) {
  const engine::Planner planner;
  if (e == Engine::Auto) return planner.plan(p, t);
  return planner.resolve(to_string(e), p, t);
}

}  // namespace

const char* to_string(Engine e) {
  // One entry per enumerator, in declaration order; the names double as
  // registry keys (engine/registry.hpp).
  constexpr const char* names[] = {"auto",  "enumerative", "bottom-up",
                                   "bilp",  "bdd",         "nsga2",
                                   "knapsack"};
  static_assert(sizeof(names) / sizeof(names[0]) ==
                    static_cast<std::size_t>(Engine::Knapsack) + 1,
                "to_string(Engine) must cover every enumerator");
  return names[static_cast<std::size_t>(e)];
}

Front2d cdpf(const CdAt& m, Engine e) {
  return route(e, engine::Problem::Cdpf, engine::traits_of(m)).cdpf(m);
}

OptAttack dgc(const CdAt& m, double budget, Engine e) {
  return route(e, engine::Problem::Dgc, engine::traits_of(m)).dgc(m, budget);
}

OptAttack cgd(const CdAt& m, double threshold, Engine e) {
  return route(e, engine::Problem::Cgd, engine::traits_of(m))
      .cgd(m, threshold);
}

Front2d cedpf(const CdpAt& m, Engine e) {
  return route(e, engine::Problem::Cedpf, engine::traits_of(m)).cedpf(m);
}

OptAttack edgc(const CdpAt& m, double budget, Engine e) {
  return route(e, engine::Problem::Edgc, engine::traits_of(m))
      .edgc(m, budget);
}

OptAttack cged(const CdpAt& m, double threshold, Engine e) {
  return route(e, engine::Problem::Cged, engine::traits_of(m))
      .cged(m, threshold);
}

}  // namespace atcd
