#pragma once
/// \file opt_result.hpp
/// Result type of the single-objective problems DgC / CgD / EDgC / CgED.

#include "at/structure.hpp"

namespace atcd {

/// Outcome of a constrained optimization over attacks.
struct OptAttack {
  bool feasible = false;  ///< false iff no attack satisfies the constraint
  double cost = 0.0;      ///< ĉ(witness)
  double damage = 0.0;    ///< d̂(witness) or d̂_E(witness)
  Attack witness;         ///< an optimal attack (empty when infeasible)
};

}  // namespace atcd
