// The probabilistic bottom-up engine shares its implementation with the
// deterministic one (see bottom_up_core.hpp for the embedding argument);
// the probabilistic entry points are defined in bottom_up.cpp alongside
// the shared sweep.  This translation unit exists to keep the build graph
// aligned with the module layout and hosts the probabilistic-only
// utilities below.

#include "core/bottom_up_prob.hpp"

namespace atcd {
// (intentionally empty; see bottom_up.cpp)
}  // namespace atcd
