/// \file bottom_up_arena.cpp
/// The arena/SoA bottom-up sweep — the default hot path behind
/// detail::bottom_up_root_front().
///
/// This is a stack-machine transcription of the recursive sweep in
/// bottom_up.cpp, with the same evaluation order step for step:
///
///   * nodes are visited in DFS order over the post-order arena,
///     children left to right;
///   * the visitor protocol is preserved exactly — lookup() fires
///     pre-order when a node is *entered* (a hit means its subtree is
///     never descended into), store() fires post-order when a node
///     finishes, before the parent moves to its next child.  A memo
///     populated mid-sweep therefore serves later isomorphic subtrees
///     exactly as it does on the recursive path;
///   * gates fold children incrementally (combine with the accumulator,
///     then prune) and add their own damage before the final prune, in
///     the same FP operation order as combine()/prune_min().
///
/// Fronts live in a TripleFrontStack: one frame per live accumulator,
/// shared SoA columns, stack discipline.  Peak memory tracks the DFS
/// fringe (≈ tree depth), not the node count, and the kernels touch
/// contiguous columns instead of heap-scattered AttrTriples — that, not
/// algorithmic change, is where the speedup comes from.

#include <memory>

#include "at/arena.hpp"
#include "core/bottom_up_core.hpp"
#include "obs/trace.hpp"
#include "pareto/front_soa.hpp"

namespace atcd::detail {

namespace {

/// Arena mirrors keyed by AttackTree::structure_id() — structure is
/// frozen at finalize() and shared by copy-on-write clones, so a mirror
/// built once serves every re-solve of the same model (the session
/// pattern: edit decorations, resolve, repeat).  Thread-local, so no
/// locking; a handful of entries covers any realistic working set.
std::shared_ptr<const ArenaTree> cached_arena(const AttackTree& tree) {
  thread_local std::vector<std::pair<std::uint64_t,
                                     std::shared_ptr<const ArenaTree>>> pool;
  const std::uint64_t id = tree.structure_id();
  for (auto& e : pool)
    if (e.first == id) return e.second;
  auto at = std::make_shared<const ArenaTree>(ArenaTree::of(tree));
  constexpr std::size_t kMaxEntries = 8;
  if (pool.size() >= kMaxEntries) pool.erase(pool.begin());
  pool.emplace_back(id, at);
  return at;
}

struct Frame {
  std::uint32_t a;        ///< arena id
  std::uint32_t next;     ///< next CSR edge index (absolute)
  bool has_acc = false;   ///< an accumulator frame for this gate is on S
};

/// The sweep's working memory, hoisted out of ArenaSweep so a
/// thread-local instance can serve every solve on the thread: columns,
/// scratch vectors and memo buffers keep their high-water capacity, so a
/// warm re-solve (the session pattern) runs allocation-free end to end.
struct SweepScratch {
  TripleFrontStack s{0};
  TripleBuf buf;                 // scratch for combine / finish
  PruneScratch scratch;
  std::vector<AttrTriple> memo;  // lookup() target, reused
  std::vector<AttrTriple> aos;   // store() argument, reused
  std::vector<Frame> frames;

  void rearm(std::uint32_t wpa) {
    s.reset(wpa);
    buf.set_wpa(wpa);
    buf.clear();
    scratch.tmp.set_wpa(wpa);
    frames.clear();
  }
};

struct ArenaSweep {
  const ArenaTree& at;
  const std::vector<double>& cost;    // per BAS index
  const std::vector<double>& damage;  // per original NodeId
  const std::vector<double>& prob;    // per BAS index
  const BottomUpOptions& opt;

  // Per-request trace hook: null on untraced solves, so the sweep pays
  // one pointer test per node.  Facts are flushed once in run().
  obs::Trace* tr = obs::current_trace();
  std::uint64_t nodes_swept = 0;
  std::uint64_t max_front = 0;

  std::size_t nbits;
  std::uint32_t wpa;
  TripleFrontStack& s;
  TripleBuf& buf;
  PruneScratch& scratch;
  std::vector<AttrTriple>& memo;
  std::vector<AttrTriple>& aos;
  std::vector<Frame>& frames;

  explicit ArenaSweep(const ArenaTree& at_, const std::vector<double>& c,
                      const std::vector<double>& d,
                      const std::vector<double>& p, const BottomUpOptions& o,
                      SweepScratch& ws)
      : at(at_),
        cost(c),
        damage(d),
        prob(p),
        opt(o),
        nbits(at_.bas_count()),
        wpa(static_cast<std::uint32_t>((at_.bas_count() + 63) / 64)),
        s(ws.s),
        buf(ws.buf),
        scratch(ws.scratch),
        memo(ws.memo),
        aos(ws.aos),
        frames(ws.frames) {
    ws.rearm(wpa);
  }

  /// Traced solves only: tallies a visited node and tracks the widest
  /// pruned front materialized so far.
  void note_front() {
    if (!tr) return;
    ++nodes_swept;
    const std::uint64_t w = s.from_top(0).n;
    if (w > max_front) max_front = w;
  }

  /// Tries to produce node \p a's front without descending: memo hit or
  /// BAS base case.  On success the front is pushed onto `s` and true is
  /// returned; otherwise a gate frame is pushed onto `frames`.
  bool enter(std::uint32_t a) {
    if (opt.visitor) {
      // Prefer the SoA-native lookup (a hit is four contiguous column
      // copies); only a visitor without SoA storage falls through to
      // lookup_ref — never after a kMiss, so stats count each probe
      // exactly once.  `memo` is deliberately NOT cleared first:
      // lookup() overwrites it on a hit (the documented contract), and
      // reusing the triples' witness storage keeps warm re-solves
      // allocation-free.
      TripleView hv;
      switch (opt.visitor->lookup_view(at.orig_of(a), &hv)) {
        case SubtreeVisitor::ViewResult::kHit:
          s.push_view(hv);
          note_front();
          return true;
        case SubtreeVisitor::ViewResult::kMiss:
          break;
        case SubtreeVisitor::ViewResult::kUnsupported:
          if (const std::vector<AttrTriple>* hit =
                  opt.visitor->lookup_ref(at.orig_of(a), &memo)) {
            s.push_aos(*hit, nbits);
            note_front();
            return true;
          }
          break;
      }
    }
    if (at.is_bas(a)) {
      const NodeId v = at.orig_of(a);
      const std::uint32_t b = at.bas_index(a);
      buf.clear();
      buf.push_zero(0.0, 0.0, 0.0);
      const double c = cost[b];
      if (c <= opt.budget) {
        const double p = prob[b];
        const std::size_t r = buf.push_zero(c, p * damage[v], p);
        buf.witness(r)[b >> 6] |= std::uint64_t{1} << (b & 63);
      }
      prune_select(buf.view(), opt.budget, &scratch);
      s.push_select(buf.view(), scratch.idx);
      note_front();
      if (opt.visitor) opt.visitor->store_soa(v, s.from_top(0), nbits, &aos);
      return true;
    }
    frames.push_back({a, at.child_offsets()[a]});
    return false;
  }

  /// A child front just landed on top of `s`; fold it into the gate's
  /// accumulator (the first child's front *becomes* the accumulator).
  void fold_child(Frame& f) {
    if (!f.has_acc) {
      f.has_acc = true;
      return;
    }
    combine_soa(s.from_top(1), s.from_top(0), at.type(f.a), &buf, opt.budget);
    prune_select(buf.view(), opt.budget, &scratch);
    s.pop(2);
    s.push_select(buf.view(), scratch.idx);
  }

  std::vector<AttrTriple> run() {
    const std::uint32_t root = at.root();
    if (!enter(root)) {
      const std::uint32_t* edges = at.child_edges().data();
      while (!frames.empty()) {
        Frame& f = frames.back();
        if (f.next < at.child_offsets()[f.a + 1]) {
          const std::uint32_t c = edges[f.next++];
          if (enter(c)) fold_child(f);
          continue;  // descend into the gate frame enter() pushed
        }
        // All children folded: add this gate's own damage (weighted by
        // activation) directly on the pool's top frame, then prune it in
        // place — no accumulator copy.
        const double dv = damage[at.orig_of(f.a)];
        {
          const TripleView acc = s.from_top(0);
          double* dmg = s.top_damage();
          for (std::size_t r = 0; r < acc.n; ++r) dmg[r] += acc.act[r] * dv;
        }
        prune_select(s.from_top(0), opt.budget, &scratch);
        s.compact_top(scratch.idx, &scratch.tmp);
        note_front();
        if (opt.visitor)
          opt.visitor->store_soa(at.orig_of(f.a), s.from_top(0), nbits, &aos);
        frames.pop_back();
        if (!frames.empty()) fold_child(frames.back());
      }
    }
    if (tr) {
      tr->fact("arena_nodes_swept", nodes_swept);
      tr->fact_max("arena_max_front", max_front);
    }
    return s.top_to_aos(nbits);
  }
};

}  // namespace

std::vector<AttrTriple> bottom_up_root_front_arena(
    const AttackTree& tree, const std::vector<double>& cost,
    const std::vector<double>& damage, const std::vector<double>& prob,
    const BottomUpOptions& opt) {
  if (!tree.finalized()) throw ModelError("bottom_up: tree not finalized");
  if (!tree.is_treelike())
    throw UnsupportedError(
        "bottom_up: model is DAG-shaped; sub-AT attack spaces are not "
        "disjoint, use the BILP engine (deterministic) or the BDD engine "
        "(probabilistic) instead");
  const std::shared_ptr<const ArenaTree> at = cached_arena(tree);
  // One pooled scratch per thread; visitors are not allowed to recurse
  // into a solve, but if one ever does, fall back to a private scratch
  // rather than corrupt the in-use pool.
  thread_local SweepScratch tls_ws;
  thread_local bool tls_busy = false;
  if (tls_busy) {
    SweepScratch ws;
    return ArenaSweep(*at, cost, damage, prob, opt, ws).run();
  }
  tls_busy = true;
  struct Release {
    bool* b;
    ~Release() { *b = false; }
  } release{&tls_busy};
  return ArenaSweep(*at, cost, damage, prob, opt, tls_ws).run();
}

}  // namespace atcd::detail
