#include "core/bilp_method.hpp"

namespace atcd {
namespace {

Attack attack_of_solution(const CdAt& m, const std::vector<double>& x) {
  Attack a(m.tree.bas_count());
  for (NodeId b : m.tree.bas_ids())
    if (x[b] > 0.5) a.set(m.tree.bas_index(b));
  return a;
}

OptAttack finish(const CdAt& m, const std::vector<double>& x) {
  OptAttack r;
  r.feasible = true;
  r.witness = attack_of_solution(m, x);
  r.cost = total_cost(m, r.witness);
  r.damage = total_damage(m, r.witness);
  return r;
}

void accumulate(BilpRunStats* out, const ilp::BilpStats& in) {
  if (!out) return;
  out->ilp_solves += in.ilp_solves;
  out->bnb_nodes += in.bnb_nodes;
}

}  // namespace

ilp::BiObjectiveProgram make_bilp(const CdAt& m) {
  m.validate();
  const auto& t = m.tree;
  ilp::BiObjectiveProgram bp;
  bp.obj1.resize(t.node_count());
  bp.obj2.resize(t.node_count());
  for (NodeId v = 0; v < t.node_count(); ++v) {
    bp.base.add_var(0.0, 1.0, 0.0);
    bp.integer_vars.push_back(static_cast<int>(v));
    bp.obj1[v] = -m.damage[v];
    bp.obj2[v] = t.is_bas(v) ? m.cost[t.bas_index(v)] : 0.0;
  }
  for (NodeId v = 0; v < t.node_count(); ++v) {
    const auto& n = t.node(v);
    if (n.type == NodeType::AND) {
      for (NodeId w : n.children)
        bp.base.add_row({{static_cast<int>(v), 1.0},
                         {static_cast<int>(w), -1.0}},
                        lp::Sense::LE, 0.0);
    } else if (n.type == NodeType::OR) {
      std::vector<std::pair<int, double>> terms{{static_cast<int>(v), 1.0}};
      for (NodeId w : n.children) terms.emplace_back(static_cast<int>(w), -1.0);
      bp.base.add_row(std::move(terms), lp::Sense::LE, 0.0);
    }
  }
  return bp;
}

Front2d cdpf_bilp(const CdAt& m, BilpRunStats* stats) {
  const auto bp = make_bilp(m);
  ilp::BilpStats bs;
  const auto nd = ilp::nondominated_set(bp, 0.0, &bs);
  accumulate(stats, bs);
  std::vector<FrontPoint> cands;
  cands.reserve(nd.size());
  for (const auto& p : nd) {
    Attack w = attack_of_solution(m, p.x);
    // Report semantic values of the witness (equal to the program's
    // (f2, -f1) at optimality; recomputing keeps the front exactly
    // consistent with the model semantics).
    cands.push_back({CdPoint{total_cost(m, w), total_damage(m, w)},
                     std::move(w)});
  }
  return Front2d::of_candidates(std::move(cands));
}

OptAttack dgc_bilp(const CdAt& m, double budget, BilpRunStats* stats) {
  if (budget < 0.0) return {};
  auto bp = make_bilp(m);
  // Thm 7 budget constraint on the cost objective.
  std::vector<std::pair<int, double>> cost_terms;
  for (NodeId b : m.tree.bas_ids())
    cost_terms.emplace_back(static_cast<int>(b),
                            m.cost[m.tree.bas_index(b)]);
  bp.base.add_row(std::move(cost_terms), lp::Sense::LE, budget);
  ilp::BilpStats bs;
  const auto p = ilp::lex_min(bp, /*f1_first=*/true, &bs);
  accumulate(stats, bs);
  if (!p) return {};  // cannot happen: the empty attack is feasible
  return finish(m, p->x);
}

OptAttack cgd_bilp(const CdAt& m, double threshold, BilpRunStats* stats) {
  auto bp = make_bilp(m);
  // Thm 7 damage constraint: -Σ d(v) y_v <= -L.
  std::vector<std::pair<int, double>> dmg_terms;
  for (NodeId v = 0; v < m.tree.node_count(); ++v)
    if (m.damage[v] != 0.0)
      dmg_terms.emplace_back(static_cast<int>(v), -m.damage[v]);
  bp.base.add_row(std::move(dmg_terms), lp::Sense::LE, -threshold);
  ilp::BilpStats bs;
  const auto p = ilp::lex_min(bp, /*f1_first=*/false, &bs);
  accumulate(stats, bs);
  if (!p) return {};  // threshold exceeds the maximal damage
  return finish(m, p->x);
}

}  // namespace atcd
