#include "core/enumerative.hpp"

#include "at/arena.hpp"

namespace atcd {
namespace {

void check_cap(const AttackTree& t, std::size_t max_bas, const char* who) {
  if (t.bas_count() > max_bas)
    throw CapacityError(std::string(who) + ": " +
                        std::to_string(t.bas_count()) +
                        " BASs exceeds the enumeration cap of " +
                        std::to_string(max_bas));
}

/// Invokes fn(attack, cost) for every attack.
template <typename Fn>
void for_each_attack(const CdAt& m, Fn&& fn) {
  const std::size_t nb = m.tree.bas_count();
  const std::uint64_t total = std::uint64_t{1} << nb;
  for (std::uint64_t mask = 0; mask < total; ++mask) {
    Attack x = Attack::from_mask(nb, mask);
    double c = 0.0;
    for (std::size_t i = 0; i < nb; ++i)
      if (mask >> i & 1) c += m.cost[i];
    fn(std::move(x), c);
  }
}

/// Per-attack d̂(x) over a flat arena built once per solve.  The damage
/// sum runs in original NodeId order, so results are bit-identical to
/// total_damage() — the 2^|B| structure evaluations just stop chasing
/// Node pointers.
struct DetEval {
  ArenaTree at;
  const std::vector<double>& damage;
  std::vector<char> s;  // structure scratch, reused across attacks

  explicit DetEval(const CdAt& m) : at(ArenaTree::of(m.tree)), damage(m.damage) {}
  double operator()(const Attack& x) {
    return arena_total_damage(at, x, damage, &s);
  }
};

/// Per-attack d̂_E(x) over an arena model; treelike only (same
/// UnsupportedError as expected_damage() on DAG input).
struct ProbEval {
  ArenaModel am;
  const std::vector<double>& damage;
  std::vector<double> ps;  // PS scratch, reused across attacks

  explicit ProbEval(const CdpAt& m) : am(ArenaModel::of(m)), damage(m.damage) {}
  double operator()(const Attack& x) {
    return arena_expected_damage(am, x, damage, &ps);
  }
};

}  // namespace

Front2d cdpf_enumerative(const CdAt& m, std::size_t max_bas) {
  m.validate();
  check_cap(m.tree, max_bas, "cdpf_enumerative");
  std::vector<FrontPoint> cands;
  cands.reserve(std::size_t{1} << m.tree.bas_count());
  DetEval eval(m);
  for_each_attack(m, [&](Attack x, double c) {
    const double d = eval(x);
    cands.push_back({CdPoint{c, d}, std::move(x)});
  });
  return Front2d::of_candidates(std::move(cands));
}

Front2d cedpf_enumerative(const CdpAt& m, std::size_t max_bas) {
  m.validate();
  check_cap(m.tree, max_bas, "cedpf_enumerative");
  std::vector<FrontPoint> cands;
  cands.reserve(std::size_t{1} << m.tree.bas_count());
  const CdAt det = m.deterministic();
  ProbEval eval(m);
  for_each_attack(det, [&](Attack x, double c) {
    const double d = eval(x);
    cands.push_back({CdPoint{c, d}, std::move(x)});
  });
  return Front2d::of_candidates(std::move(cands));
}

OptAttack dgc_enumerative(const CdAt& m, double budget, std::size_t max_bas) {
  m.validate();
  check_cap(m.tree, max_bas, "dgc_enumerative");
  OptAttack best;
  DetEval eval(m);
  for_each_attack(m, [&](Attack x, double c) {
    if (c > budget) return;
    const double d = eval(x);
    if (!best.feasible || d > best.damage ||
        (d == best.damage && c < best.cost)) {
      best = OptAttack{true, c, d, std::move(x)};
    }
  });
  return best;
}

OptAttack cgd_enumerative(const CdAt& m, double threshold,
                          std::size_t max_bas) {
  m.validate();
  check_cap(m.tree, max_bas, "cgd_enumerative");
  OptAttack best;
  DetEval eval(m);
  for_each_attack(m, [&](Attack x, double c) {
    const double d = eval(x);
    if (d < threshold) return;
    if (!best.feasible || c < best.cost ||
        (c == best.cost && d > best.damage)) {
      best = OptAttack{true, c, d, std::move(x)};
    }
  });
  return best;
}

OptAttack edgc_enumerative(const CdpAt& m, double budget,
                           std::size_t max_bas) {
  m.validate();
  check_cap(m.tree, max_bas, "edgc_enumerative");
  OptAttack best;
  const CdAt det = m.deterministic();
  ProbEval eval(m);
  for_each_attack(det, [&](Attack x, double c) {
    if (c > budget) return;
    const double d = eval(x);
    if (!best.feasible || d > best.damage ||
        (d == best.damage && c < best.cost)) {
      best = OptAttack{true, c, d, std::move(x)};
    }
  });
  return best;
}

OptAttack cged_enumerative(const CdpAt& m, double threshold,
                           std::size_t max_bas) {
  m.validate();
  check_cap(m.tree, max_bas, "cged_enumerative");
  OptAttack best;
  const CdAt det = m.deterministic();
  ProbEval eval(m);
  for_each_attack(det, [&](Attack x, double c) {
    const double d = eval(x);
    if (d < threshold) return;
    if (!best.feasible || c < best.cost ||
        (c == best.cost && d > best.damage)) {
      best = OptAttack{true, c, d, std::move(x)};
    }
  });
  return best;
}

}  // namespace atcd
