#include "core/cdat.hpp"

#include <cmath>

#include "at/transform.hpp"

namespace atcd {
namespace {

void validate_common(const AttackTree& t, const std::vector<double>& cost,
                     const std::vector<double>& damage) {
  if (!t.finalized()) throw ModelError("cd-AT: tree not finalized");
  if (cost.size() != t.bas_count())
    throw ModelError("cd-AT: cost vector size != number of BASs");
  if (damage.size() != t.node_count())
    throw ModelError("cd-AT: damage vector size != number of nodes");
  for (double c : cost)
    if (!(c >= 0.0)) throw ModelError("cd-AT: costs must be >= 0");
  for (double d : damage)
    if (!(d >= 0.0)) throw ModelError("cd-AT: damages must be >= 0");
}

double cost_sum(const AttackTree& t, const std::vector<double>& cost,
                const Attack& x) {
  if (x.size() != t.bas_count())
    throw ModelError("total_cost: attack size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    if (x.test(i)) sum += cost[i];
  return sum;
}

}  // namespace

void CdAt::validate() const { validate_common(tree, cost, damage); }

void CdpAt::validate() const {
  validate_common(tree, cost, damage);
  if (prob.size() != tree.bas_count())
    throw ModelError("cdp-AT: prob vector size != number of BASs");
  for (double p : prob)
    if (!(p >= 0.0 && p <= 1.0))
      throw ModelError("cdp-AT: probabilities must lie in [0,1]");
}

double total_cost(const CdAt& m, const Attack& x) {
  return cost_sum(m.tree, m.cost, x);
}

double total_cost(const CdpAt& m, const Attack& x) {
  return cost_sum(m.tree, m.cost, x);
}

double total_damage(const CdAt& m, const Attack& x) {
  const auto s = evaluate_structure(m.tree, x);
  double sum = 0.0;
  for (NodeId v = 0; v < m.tree.node_count(); ++v)
    if (s[v]) sum += m.damage[v];
  return sum;
}

std::vector<double> probabilistic_structure(const CdpAt& m, const Attack& x) {
  if (!m.tree.is_treelike())
    throw UnsupportedError(
        "probabilistic_structure: per-node products are only exact on "
        "treelike ATs; use the BDD engine for DAGs");
  if (x.size() != m.tree.bas_count())
    throw ModelError("probabilistic_structure: attack size mismatch");
  std::vector<double> ps(m.tree.node_count(), 0.0);
  for (NodeId v : m.tree.topological_order()) {
    const auto& n = m.tree.node(v);
    switch (n.type) {
      case NodeType::BAS:
        ps[v] = x.test(n.bas_index) ? m.prob[n.bas_index] : 0.0;
        break;
      case NodeType::OR: {
        // Fold with p ⋆ q = p + q - pq (eq. (8)) in child order — the
        // same association the bottom-up engine uses, so both code paths
        // produce bit-identical values (1 - Π(1-p) differs in ulps and
        // makes threshold queries disagree across engines).
        double p = 0.0;
        for (NodeId c : n.children) p = p + ps[c] - p * ps[c];
        ps[v] = p;
        break;
      }
      case NodeType::AND: {
        double p = 1.0;
        for (NodeId c : n.children) p *= ps[c];
        ps[v] = p;
        break;
      }
    }
  }
  return ps;
}

double expected_damage(const CdpAt& m, const Attack& x) {
  const auto ps = probabilistic_structure(m, x);
  double sum = 0.0;
  for (NodeId v = 0; v < m.tree.node_count(); ++v) sum += ps[v] * m.damage[v];
  return sum;
}

double expected_damage_exact(const CdpAt& m, const Attack& x,
                             std::size_t max_attempted) {
  if (x.size() != m.tree.bas_count())
    throw ModelError("expected_damage_exact: attack size mismatch");
  const auto attempted = x.ones();
  if (attempted.size() > max_attempted)
    throw CapacityError("expected_damage_exact: " +
                        std::to_string(attempted.size()) +
                        " attempted BASs exceeds the enumeration cap");
  const CdAt det{m.tree, m.cost, m.damage};
  double total = 0.0;
  const std::uint64_t n = std::uint64_t{1} << attempted.size();
  for (std::uint64_t mask = 0; mask < n; ++mask) {
    Attack y(m.tree.bas_count());
    double pr = 1.0;
    for (std::size_t i = 0; i < attempted.size(); ++i) {
      const double p = m.prob[attempted[i]];
      if (mask >> i & 1) {
        y.set(attempted[i]);
        pr *= p;
      } else {
        pr *= 1.0 - p;
      }
    }
    if (pr > 0.0) total += pr * total_damage(det, y);
  }
  return total;
}

double sample_damage(const CdpAt& m, const Attack& x, Rng& rng) {
  Attack y(m.tree.bas_count());
  for (std::size_t i = 0; i < x.size(); ++i)
    if (x.test(i) && rng.chance(m.prob[i])) y.set(i);
  return total_damage(CdAt{m.tree, m.cost, m.damage}, y);
}

CdAt with_internal_costs(const CdAt& m,
                         const std::vector<double>& internal_cost) {
  if (internal_cost.size() != m.tree.node_count())
    throw ModelError("with_internal_costs: size mismatch");
  for (NodeId v = 0; v < m.tree.node_count(); ++v)
    if (m.tree.is_bas(v) && internal_cost[v] != 0.0)
      throw ModelError(
          "with_internal_costs: BAS costs belong in CdAt::cost, entry must "
          "be 0 for '" + m.tree.name(v) + "'");

  CdAt out;
  std::vector<NodeId> map(m.tree.node_count(), kNoNode);
  std::vector<double> new_damage;  // grows with out.tree
  auto push_damage = [&new_damage](NodeId id, double d) {
    if (new_damage.size() <= id) new_damage.resize(id + 1, 0.0);
    new_damage[id] = d;
  };

  for (NodeId v : m.tree.topological_order()) {
    const auto& n = m.tree.node(v);
    if (n.type == NodeType::BAS) {
      const NodeId nv = out.tree.add_bas(n.name);
      out.cost.push_back(m.cost[n.bas_index]);
      map[v] = nv;
      push_damage(nv, m.damage[v]);
      continue;
    }
    std::vector<NodeId> cs;
    cs.reserve(n.children.size());
    for (NodeId c : n.children) cs.push_back(map[c]);

    if (internal_cost[v] == 0.0) {
      map[v] = out.tree.add_gate(n.type, n.name, cs);
      push_damage(map[v], m.damage[v]);
      continue;
    }
    // Fig. 2 rewrite: the node activates only if its gate condition holds
    // AND the dummy cost-BAS is paid.  The damage stays on the rewritten
    // node itself, NOT on the dummy (moving it there would change the
    // semantics — Fig. 2 right).
    const NodeId dummy = out.tree.add_bas(n.name + "#cost");
    out.cost.push_back(internal_cost[v]);
    push_damage(dummy, 0.0);
    if (n.type == NodeType::AND) {
      cs.push_back(dummy);
      map[v] = out.tree.add_gate(NodeType::AND, n.name, cs);
    } else {
      const NodeId inner = out.tree.add_gate(NodeType::OR, n.name + "#or", cs);
      push_damage(inner, 0.0);
      map[v] = out.tree.add_gate(NodeType::AND, n.name, {inner, dummy});
    }
    push_damage(map[v], m.damage[v]);
  }
  out.tree.set_root(map[m.tree.root()]);
  out.tree.finalize();
  new_damage.resize(out.tree.node_count(), 0.0);
  out.damage = std::move(new_damage);
  out.validate();
  return out;
}

CdAt binarize_model(const CdAt& m) {
  const auto r = binarize(m.tree);
  CdAt out;
  out.tree = r.tree;
  out.cost = m.cost;  // BAS order is preserved by binarize()
  out.damage.assign(r.tree.node_count(), 0.0);
  for (NodeId v = 0; v < m.tree.node_count(); ++v)
    out.damage[r.node_map[v]] = m.damage[v];
  out.validate();
  return out;
}

CdpAt binarize_model(const CdpAt& m) {
  const CdAt det = binarize_model(m.deterministic());
  CdpAt out{det.tree, det.cost, det.damage, m.prob};
  out.validate();
  return out;
}

CdpAt randomize_decorations(const AttackTree& t, Rng& rng) {
  CdpAt m;
  m.tree = t;
  m.cost.resize(t.bas_count());
  m.prob.resize(t.bas_count());
  m.damage.resize(t.node_count());
  for (auto& c : m.cost) c = static_cast<double>(rng.range(1, 10));
  for (auto& p : m.prob) p = 0.1 * static_cast<double>(rng.range(1, 10));
  for (auto& d : m.damage) d = static_cast<double>(rng.range(0, 10));
  return m;
}

}  // namespace atcd
