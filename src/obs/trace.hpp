#pragma once
/// \file trace.hpp
/// Per-request trace spans: a lightweight, thread-confined span context
/// threaded through the serving stack.
///
/// A Trace is activated for the duration of one dispatch via
/// TraceActivation (which installs it in a thread-local slot and
/// restores the previous one on exit — activations nest).  Downstream
/// layers never see a trace handle: they open SpanScope("phase.name")
/// RAII guards and call trace_fact("name", delta) unconditionally; both
/// are no-ops costing one thread-local read when no trace is active, so
/// instrumented code paths stay on by default without perturbing
/// untraced requests.  This is what keeps JSON responses byte-identical
/// across thread counts when tracing is off: absent a `"trace": true`
/// envelope, no trace state exists and nothing is recorded or emitted.
///
/// Spans are recorded in open (pre-)order with an explicit nesting
/// depth, a start offset relative to the trace's activation (micros),
/// and a duration filled in when the scope closes — enough to
/// reconstruct the phase tree without pointers.  Facts are named
/// uint64 tallies (memo hits, nodes swept, …); fact() accumulates by
/// name, fact_max() keeps the maximum (for high-water marks like the
/// widest Pareto front seen).
///
/// Thread-confinement: the active trace does not propagate to worker
/// threads (engine::solve_all's pool, coalesced followers), so a traced
/// batch records the dispatch-side phases only.  Single-request solves
/// — the latency-sensitive path traces exist for — run entirely on the
/// dispatching thread and record every layer.
/// Tracing never changes solve results: spans and facts are write-only
/// side channels; no solver code reads them.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace atcd::obs {

class Trace {
 public:
  struct Span {
    std::string name;
    std::uint32_t depth = 0;     ///< nesting depth; 0 = outermost
    std::uint64_t start_us = 0;  ///< offset from trace activation
    std::uint64_t dur_us = 0;
  };

  Trace();

  /// Micros elapsed since construction.
  std::uint64_t elapsed_us() const;

  /// Opens a span; returns its index for close_span().  Spans close in
  /// LIFO order (enforced by SpanScope).
  std::size_t open_span(const char* name);
  void close_span(std::size_t idx);

  /// Accumulates \p delta into the named tally (created at 0).
  void fact(const char* name, std::uint64_t delta);
  /// Raises the named tally to at least \p v.
  void fact_max(const char* name, std::uint64_t v);

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<std::pair<std::string, std::uint64_t>>& facts() const {
    return facts_;
  }

 private:
  std::pair<std::string, std::uint64_t>* find_fact(const char* name);

  std::uint64_t t0_ns_;
  std::uint32_t depth_ = 0;
  std::vector<Span> spans_;
  // Linear scan by name: a trace carries a handful of facts, and
  // insertion order is irrelevant (the codec sorts at encode time).
  std::vector<std::pair<std::string, std::uint64_t>> facts_;
};

/// The thread's active trace; null when the current request is not
/// being traced.
Trace* current_trace();

/// Installs \p t as the thread's active trace for the guard's lifetime;
/// restores the previous active trace (usually null) on destruction.
class TraceActivation {
 public:
  explicit TraceActivation(Trace* t);
  ~TraceActivation();
  TraceActivation(const TraceActivation&) = delete;
  TraceActivation& operator=(const TraceActivation&) = delete;

 private:
  Trace* prev_;
};

/// RAII phase span: records [ctor, dtor) against the active trace;
/// a no-op (one thread-local read) when none is active.
class SpanScope {
 public:
  explicit SpanScope(const char* name) : t_(current_trace()) {
    if (t_) idx_ = t_->open_span(name);
  }
  ~SpanScope() {
    if (t_) t_->close_span(idx_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Trace* t_;
  std::size_t idx_ = 0;
};

/// Accumulates a hot-path fact into the active trace, if any.
inline void trace_fact(const char* name, std::uint64_t delta) {
  if (Trace* t = current_trace()) t->fact(name, delta);
}

/// High-water-mark variant of trace_fact().
inline void trace_fact_max(const char* name, std::uint64_t v) {
  if (Trace* t = current_trace()) t->fact_max(name, v);
}

}  // namespace atcd::obs
