#pragma once
/// \file trace_export.hpp
/// Chrome trace-event export for obs::Trace span trees.
///
/// chrome_trace_json() renders recorded phase spans as the Trace Event
/// Format's JSON object form — {"traceEvents": [...]} with one "ph":"X"
/// complete event per span — which chrome://tracing and Perfetto load
/// directly.  All events share pid/tid 1: complete events whose time
/// ranges nest are stacked by the viewers, which reproduces the span
/// tree without synthetic thread ids (spans are thread-confined by
/// construction, see trace.hpp).  Hot-path facts ride as "args" on the
/// outermost span, so counters like memo hits appear in the viewer's
/// selection panel.
///
/// The span input is a neutral struct rather than obs::Trace::Span so
/// transports can feed decoded api::TraceSpanPayload lists through the
/// same exporter without this layer depending on the api codec.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace atcd::obs {

/// One span in codec-neutral form (field-compatible with both
/// Trace::Span and api::TraceSpanPayload).
struct ExportSpan {
  std::string name;
  std::uint64_t depth = 0;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
};

/// Renders spans + facts as a Chrome trace-event JSON object.
/// \p label names the process in the viewer (a metadata event).
std::string chrome_trace_json(
    const std::vector<ExportSpan>& spans,
    const std::vector<std::pair<std::string, std::uint64_t>>& facts,
    const std::string& label = "atcd");

/// Convenience overload for a live trace.
std::string chrome_trace_json(const Trace& trace,
                              const std::string& label = "atcd");

}  // namespace atcd::obs
