/// \file trace.cpp
/// Trace span recording and the thread-local activation slot.

#include "obs/trace.hpp"

#include <chrono>
#include <cstring>

namespace atcd::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local Trace* tls_trace = nullptr;

}  // namespace

Trace::Trace() : t0_ns_(now_ns()) {}

std::uint64_t Trace::elapsed_us() const { return (now_ns() - t0_ns_) / 1000; }

std::size_t Trace::open_span(const char* name) {
  const std::size_t idx = spans_.size();
  Span s;
  s.name = name;
  s.depth = depth_++;
  s.start_us = elapsed_us();
  spans_.push_back(std::move(s));
  return idx;
}

void Trace::close_span(std::size_t idx) {
  Span& s = spans_[idx];
  const std::uint64_t now = elapsed_us();
  s.dur_us = now >= s.start_us ? now - s.start_us : 0;
  if (depth_ > 0) --depth_;
}

std::pair<std::string, std::uint64_t>* Trace::find_fact(const char* name) {
  for (auto& f : facts_)
    if (std::strcmp(f.first.c_str(), name) == 0) return &f;
  facts_.emplace_back(name, 0);
  return &facts_.back();
}

void Trace::fact(const char* name, std::uint64_t delta) {
  find_fact(name)->second += delta;
}

void Trace::fact_max(const char* name, std::uint64_t v) {
  auto* f = find_fact(name);
  if (v > f->second) f->second = v;
}

Trace* current_trace() { return tls_trace; }

TraceActivation::TraceActivation(Trace* t) : prev_(tls_trace) {
  tls_trace = t;
}

TraceActivation::~TraceActivation() { tls_trace = prev_; }

}  // namespace atcd::obs
