#pragma once
/// \file metrics.hpp
/// Process-wide metrics registry: named typed instruments for the
/// serving stack.
///
/// Three instrument kinds cover everything the serving layers count:
///
///  * Counter   — monotonic; sharded per-thread atomics so a hot-path
///    increment is a single relaxed fetch_add on a cacheline owned (in
///    the steady state) by the calling thread.
///  * Gauge     — a settable level (resident cache entries/bytes, open
///    sessions).  Derived gauges are *refreshed at exposition time*
///    from their source of truth rather than updated on every mutation,
///    so they cost nothing on the hot path.
///  * Histogram — fixed-bucket log-scale latency histogram over
///    non-negative integer samples (microseconds by convention), with
///    exact-rank p50/p95/p99 extraction.  Buckets are log-spaced with 8
///    sub-buckets per octave (values < 8 are exact), so relative bucket
///    error is <= 12.5% at any magnitude while the whole table stays a
///    few KB.  Recording is three relaxed adds; percentile extraction
///    merges the shards and walks the cumulative counts, returning the
///    bucket's inclusive upper edge — deterministic for a given
///    recorded multiset, no interpolation.
///
/// A Registry owns instruments by name (get-or-create under a mutex;
/// returned references stay valid for the registry's lifetime) and
/// renders them in two canonical forms: a JSON object and a
/// Prometheus-style text exposition.  Both iterate names in sorted
/// order, so the output byte-layout is a pure function of the
/// instrument values — the `metrics` op and `--metrics-dump` stay
/// deterministic.
///
/// Ownership convention across the stack: subsystems take an
/// `obs::Registry*` in their config/options and fall back to a private
/// registry when given null, so standalone instances keep isolated
/// counters (tests pin absolute values) while a Dispatcher-assembled
/// stack shares one registry — the single source of truth the `metrics`
/// operation exposes.

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace atcd::obs {

namespace detail {
/// Small dense per-thread index (assigned round-robin on first use);
/// instruments fold it onto their shard count.  Distinct long-lived
/// threads land on distinct shards until the shard count is exceeded.
std::size_t shard_slot();
}  // namespace detail

/// Monotonic counter.  add() is wait-free: one relaxed fetch_add on the
/// calling thread's shard.  value() merges the shards (a racing add may
/// or may not be included — the usual snapshot semantics).
class Counter {
 public:
  static constexpr std::size_t kShards = 16;  // power of two

  void add(std::uint64_t n = 1) {
    shards_[detail::shard_slot() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Settable level.  Last set wins; no sharding (gauges are written at
/// exposition time, not on the hot path).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-scale latency histogram; see the file comment for the layout.
class Histogram {
 public:
  /// 8 sub-buckets per octave: values < 8 are exact, above that bucket
  /// `8 + (exp-3)*8 + sub` covers [ (8+sub) << (exp-3), … ] where exp is
  /// the sample's bit width minus one.
  static constexpr std::size_t kSubBits = 3;
  static constexpr std::size_t kSub = 1u << kSubBits;  // 8
  // Exponents kSubBits..63 each contribute kSub buckets after the kSub
  // exact ones, so the top sample (2^64-1) lands on the last index.
  static constexpr std::size_t kBuckets = kSub + (64 - kSubBits) * kSub;

  void record(std::uint64_t v) {
    Shard& s = shards_[detail::shard_slot() & (kShardCount - 1)];
    s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const;
  std::uint64_t sum() const;

  /// Exact-rank quantile over the merged buckets: the value returned is
  /// the inclusive upper edge of the bucket containing the ceil(q*n)-th
  /// smallest sample.  0 when empty.  \p q in [0, 1].
  double percentile(double q) const;

  /// Bucket index of a sample (exposed for the unit tests).
  static std::size_t bucket_of(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const unsigned exp = static_cast<unsigned>(std::bit_width(v)) - 1;
    return kSub + (exp - kSubBits) * kSub +
           static_cast<std::size_t>((v >> (exp - kSubBits)) & (kSub - 1));
  }

  /// Inclusive upper edge of bucket \p b.  For the very last bucket the
  /// shifted edge wraps to 0 and the -1 lands exactly on 2^64-1, the
  /// true upper; the guard only covers indices past the table.
  static std::uint64_t bucket_upper(std::size_t b) {
    if (b < kSub) return b;
    const std::size_t shift = (b - kSub) / kSub;
    const std::uint64_t sub = (b - kSub) % kSub;
    if (shift >= 64 - kSubBits) return ~std::uint64_t{0};
    return ((kSub + sub + 1) << shift) - 1;
  }

 private:
  static constexpr std::size_t kShardCount = 4;  // power of two
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> buckets[kBuckets] = {};
  };
  // ~4 KB per shard; heap-allocated so a Histogram member doesn't blow
  // up its owner's footprint.
  std::unique_ptr<Shard[]> shards_ =
      std::unique_ptr<Shard[]>(new Shard[kShardCount]);
};

/// Name -> instrument home.  get-or-create under a mutex; returned
/// references stay valid for the registry's lifetime.  A name denotes
/// exactly one instrument kind — asking for an existing name with a
/// different kind throws std::logic_error (a naming bug, not a runtime
/// condition).
///
/// Naming scheme (see README "Observability"): lower_snake_case,
/// `atcd_<subsystem>_<what>`, monotonic counters suffixed `_total`,
/// histograms suffixed with their unit (`_micros`).
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Canonical JSON exposition:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":n,"sum":s,"p50":..,"p95":..,"p99":..}}}
  /// Names sorted; integral values rendered without a decimal point.
  std::string to_json() const;

  /// Prometheus-style text exposition: counters and gauges as
  /// `name value` samples, histograms as summaries (quantile-labeled
  /// samples plus `_sum`/`_count`).  Names sorted.
  std::string to_prometheus() const;

 private:
  mutable std::mutex mu_;
  // std::map: sorted iteration gives the canonical exposition order.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace atcd::obs
