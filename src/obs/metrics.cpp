/// \file metrics.cpp
/// Registry storage and the two canonical expositions.

#include "obs/metrics.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace atcd::obs {

namespace detail {

std::size_t shard_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < kShardCount; ++i)
    n += shards_[i].count.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t s = 0;
  for (std::size_t i = 0; i < kShardCount; ++i)
    s += shards_[i].sum.load(std::memory_order_relaxed);
  return s;
}

double Histogram::percentile(double q) const {
  // Merge the shards into one snapshot; totals derived from the merged
  // buckets so rank and cumulative walk agree even while writers race.
  std::vector<std::uint64_t> merged(kBuckets, 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kShardCount; ++i)
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t n =
          shards_[i].buckets[b].load(std::memory_order_relaxed);
      merged[b] += n;
      total += n;
    }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += merged[b];
    if (cum >= rank) return static_cast<double>(bucket_upper(b));
  }
  return static_cast<double>(bucket_upper(kBuckets - 1));
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(name) || histograms_.count(name))
    throw std::logic_error("obs: instrument kind mismatch for " + name);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || histograms_.count(name))
    throw std::logic_error("obs: instrument kind mismatch for " + name);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || gauges_.count(name))
    throw std::logic_error("obs: instrument kind mismatch for " + name);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

/// Deterministic number rendering: integral doubles (all gauge and
/// percentile values in practice) print without a decimal point; the
/// rest use the shortest rendering that parses back exactly — the same
/// rule as the API codec's format_num, so a registry JSON embedded in a
/// response survives a parse/re-dump round trip byte for byte.
void append_num(std::string* out, double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.2e18) {
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.15g", v);
    if (std::strtod(buf, nullptr) != v)
      std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  *out += buf;
}

void append_u64(std::string* out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  *out += buf;
}

}  // namespace

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_u64(&out, c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_num(&out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{\"count\":";
    append_u64(&out, h->count());
    out += ",\"sum\":";
    append_u64(&out, h->sum());
    out += ",\"p50\":";
    append_num(&out, h->percentile(0.50));
    out += ",\"p95\":";
    append_num(&out, h->percentile(0.95));
    out += ",\"p99\":";
    append_num(&out, h->percentile(0.99));
    out += '}';
  }
  out += "}}";
  return out;
}

std::string Registry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "# TYPE " + name + " counter\n" + name + ' ';
    append_u64(&out, c->value());
    out += '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out += "# TYPE " + name + " gauge\n" + name + ' ';
    append_num(&out, g->value());
    out += '\n';
  }
  for (const auto& [name, h] : histograms_) {
    out += "# TYPE " + name + " summary\n";
    const double qs[] = {0.50, 0.95, 0.99};
    const char* labels[] = {"0.5", "0.95", "0.99"};
    for (int i = 0; i < 3; ++i) {
      out += name + "{quantile=\"" + labels[i] + "\"} ";
      append_num(&out, h->percentile(qs[i]));
      out += '\n';
    }
    out += name + "_sum ";
    append_u64(&out, h->sum());
    out += '\n';
    out += name + "_count ";
    append_u64(&out, h->count());
    out += '\n';
  }
  return out;
}

}  // namespace atcd::obs
