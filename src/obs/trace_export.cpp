#include "obs/trace_export.hpp"

#include <cstdio>
#include <sstream>

namespace atcd::obs {

namespace {

/// Minimal JSON string escaping (span/fact names are identifiers, but a
/// label could carry anything).
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string chrome_trace_json(
    const std::vector<ExportSpan>& spans,
    const std::vector<std::pair<std::string, std::uint64_t>>& facts,
    const std::string& label) {
  std::ostringstream out;
  out << "{\"traceEvents\": [\n";
  out << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"tid\": 1, \"args\": {\"name\": " << escaped(label) << "}}";
  bool facts_attached = false;
  for (const ExportSpan& s : spans) {
    out << ",\n  {\"name\": " << escaped(s.name)
        << ", \"cat\": \"atcd\", \"ph\": \"X\", \"ts\": " << s.start_us
        << ", \"dur\": " << s.dur_us << ", \"pid\": 1, \"tid\": 1";
    // Facts ride on the outermost span so viewers show them when the
    // whole request is selected.
    if (!facts_attached && s.depth == 0) {
      facts_attached = true;
      out << ", \"args\": {";
      for (std::size_t i = 0; i < facts.size(); ++i)
        out << (i ? ", " : "") << escaped(facts[i].first) << ": "
            << facts[i].second;
      out << "}";
    }
    out << "}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

std::string chrome_trace_json(const Trace& trace, const std::string& label) {
  std::vector<ExportSpan> spans;
  spans.reserve(trace.spans().size());
  for (const Trace::Span& s : trace.spans())
    spans.push_back({s.name, s.depth, s.start_us, s.dur_us});
  return chrome_trace_json(spans, trace.facts(), label);
}

}  // namespace atcd::obs
