#include "util/bitset.hpp"

#include <bit>

namespace atcd {

std::size_t DynBitset::count() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool DynBitset::is_subset_of(const DynBitset& other) const {
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  return true;
}

DynBitset& DynBitset::operator|=(const DynBitset& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

DynBitset& DynBitset::operator&=(const DynBitset& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

DynBitset& DynBitset::subtract(const DynBitset& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

std::string DynBitset::to_string() const {
  std::string s(nbits_, '0');
  for (std::size_t i = 0; i < nbits_; ++i)
    if (test(i)) s[i] = '1';
  return s;
}

std::vector<std::size_t> DynBitset::ones() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nbits_; ++i)
    if (test(i)) out.push_back(i);
  return out;
}

DynBitset DynBitset::from_mask(std::size_t nbits, std::uint64_t mask) {
  DynBitset b(nbits);
  if (!b.words_.empty()) b.words_[0] = mask;
  // Bits beyond nbits must stay zero so equality/hash stay canonical.
  if (nbits < 64 && !b.words_.empty())
    b.words_[0] &= (nbits == 0) ? 0 : (~std::uint64_t{0} >> (64 - nbits));
  return b;
}

std::size_t DynBitset::hash() const {
  // FNV-1a over the words; adequate for the unordered maps in the engines.
  std::uint64_t h = 1469598103934665603ull;
  for (auto w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h ^ nbits_);
}

}  // namespace atcd
