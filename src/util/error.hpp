#pragma once
/// \file error.hpp
/// Error types used across the atcd library.
///
/// All library errors derive from atcd::Error (itself a std::runtime_error)
/// so callers can catch library failures with a single handler while still
/// distinguishing structural model errors from solver/capacity failures.

#include <stdexcept>
#include <string>

namespace atcd {

/// Base class of all exceptions thrown by the atcd library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// The attack-tree model is malformed (cycle, missing root, bad arity,
/// out-of-range node id, negative cost, probability outside [0,1], ...).
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// An algorithm received a model outside its supported class, e.g. the
/// treelike bottom-up engine applied to a DAG-shaped tree.
class UnsupportedError : public Error {
 public:
  explicit UnsupportedError(const std::string& what) : Error(what) {}
};

/// A deliberately exponential engine (enumeration, BDD enumeration) was
/// asked to handle a model beyond its configured capacity limit.
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& what) : Error(what) {}
};

/// The embedded LP/ILP solver failed (infeasible where feasibility was
/// required, unbounded relaxation, iteration limit).
class SolverError : public Error {
 public:
  explicit SolverError(const std::string& what) : Error(what) {}
};

/// Parsing a textual attack-tree model failed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

}  // namespace atcd
