#pragma once
/// \file timer.hpp
/// Minimal wall-clock stopwatch used by the benchmark harness.

#include <chrono>

namespace atcd {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace atcd
