#pragma once
/// \file bitset.hpp
/// A small dynamic bitset used to represent attacks: an attack on an AT with
/// BAS set B is a vector in {0,1}^B (paper, Def. 2).  std::bitset is fixed
/// size and std::vector<bool> lacks word-level operations, so we provide a
/// compact value type with the boolean-lattice operations the engines need
/// (union, intersection, subset test used for the partial order x ⪯ y).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace atcd {

/// Dynamic fixed-capacity bitset with value semantics.
///
/// The capacity (number of bits) is set at construction and never changes;
/// all binary operations require equal capacities.
class DynBitset {
 public:
  DynBitset() = default;

  /// Creates a bitset of \p nbits bits, all zero.
  explicit DynBitset(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  /// Number of bits.
  std::size_t size() const { return nbits_; }

  /// Tests bit \p i.  Precondition: i < size().
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Sets bit \p i to \p value.  Precondition: i < size().
  void set(std::size_t i, bool value = true) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (value)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  /// Sets all bits to zero.
  void reset() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  std::size_t count() const;

  /// True iff no bit is set.
  bool none() const {
    for (auto w : words_)
      if (w != 0) return false;
    return true;
  }

  /// True iff every bit of *this is also set in \p other
  /// (the partial order ⪯ on attacks; Def. 2).
  bool is_subset_of(const DynBitset& other) const;

  /// In-place union / intersection / difference.
  DynBitset& operator|=(const DynBitset& o);
  DynBitset& operator&=(const DynBitset& o);
  /// Removes from *this every bit set in \p o.
  DynBitset& subtract(const DynBitset& o);

  friend DynBitset operator|(DynBitset a, const DynBitset& b) { return a |= b; }
  friend DynBitset operator&(DynBitset a, const DynBitset& b) { return a &= b; }

  bool operator==(const DynBitset& o) const = default;

  /// Lexicographic order on the word representation; gives DynBitset a
  /// strict weak order so it can key ordered containers.
  bool operator<(const DynBitset& o) const {
    if (nbits_ != o.nbits_) return nbits_ < o.nbits_;
    return words_ < o.words_;
  }

  /// Renders as a '0'/'1' string, bit 0 first, e.g. "101".
  std::string to_string() const;

  /// Indices of the set bits, ascending.
  std::vector<std::size_t> ones() const;

  /// Builds a bitset of \p nbits bits whose lowest 64 bits equal \p mask.
  /// Useful for enumerating all attacks of small models.
  static DynBitset from_mask(std::size_t nbits, std::uint64_t mask);

  /// Word-level access for packed SoA storage (pareto/front_soa.hpp):
  /// bit i lives at word i/64, bit i%64.  set_word() trusts the caller
  /// to keep the padding bits above size() zero — word images obtained
  /// from word() of an equal-capacity bitset always satisfy this.
  std::size_t word_count() const { return words_.size(); }
  std::uint64_t word(std::size_t w) const { return words_[w]; }
  void set_word(std::size_t w, std::uint64_t bits) { words_[w] = bits; }

  /// Hash suitable for unordered containers.
  std::size_t hash() const;

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

struct DynBitsetHash {
  std::size_t operator()(const DynBitset& b) const { return b.hash(); }
};

}  // namespace atcd
