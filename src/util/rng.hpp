#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation (xoshiro256**).
///
/// Every randomised component of the library (random AT suites, random
/// cost/damage/probability decorations, NSGA-II) takes an explicit Rng so
/// experiments are reproducible from a seed, independent of the platform's
/// std::mt19937 / distribution implementations.

#include <cstdint>

namespace atcd {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xA7C0DDA7A5EEDull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound), bound > 0.  Uses rejection sampling so
  /// the result is exactly uniform.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli draw with success probability \p p.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t s_[4];
};

}  // namespace atcd
