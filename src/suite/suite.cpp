#include "suite/suite.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "at/parser.hpp"
#include "core/cdat.hpp"
#include "gen/literature.hpp"
#include "gen/random_at.hpp"
#include "util/rng.hpp"

namespace atcd::suite {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Splits "key = value" (first '='); false when no '=' is present.
bool split_kv(const std::string& line, std::string* key, std::string* value) {
  const std::size_t eq = line.find('=');
  if (eq == std::string::npos) return false;
  *key = trim(line.substr(0, eq));
  *value = trim(line.substr(eq + 1));
  return !key->empty();
}

/// Splits on ':' without collapsing empty fields.
std::vector<std::string> split_colon(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == ':') {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_model_spec(const std::string& value, ModelSpec* out,
                      std::string* error) {
  if (value.rfind("file:", 0) == 0) {
    out->kind = ModelSpec::Kind::File;
    out->path = value.substr(5);
    if (out->path.empty()) {
      *error = "file: model spec needs a path";
      return false;
    }
    return true;
  }
  if (value.rfind("gen:", 0) == 0) {
    const auto parts = split_colon(value.substr(4));
    if (parts.size() != 3 || (parts[0] != "tree" && parts[0] != "dag")) {
      *error = "gen: model spec must be gen:tree:<seed>:<n> or "
               "gen:dag:<seed>:<n>, got '" + value + "'";
      return false;
    }
    out->kind = ModelSpec::Kind::Gen;
    out->treelike = parts[0] == "tree";
    std::uint64_t n = 0;
    if (!parse_u64(parts[1], &out->seed) || !parse_u64(parts[2], &n) ||
        n == 0) {
      *error = "gen: model spec has a bad seed or size in '" + value + "'";
      return false;
    }
    out->size = static_cast<std::size_t>(n);
    return true;
  }
  if (value.rfind("lit:", 0) == 0) {
    const auto parts = split_colon(value.substr(4));
    if (parts.size() != 2 || parts[0].empty()) {
      *error = "lit: model spec must be lit:<block>:<seed>, got '" + value +
               "'";
      return false;
    }
    out->kind = ModelSpec::Kind::Lit;
    out->block = parts[0];
    if (!parse_u64(parts[1], &out->seed)) {
      *error = "lit: model spec has a bad seed in '" + value + "'";
      return false;
    }
    return true;
  }
  *error = "model spec must start with file:, gen: or lit:, got '" + value +
           "'";
  return false;
}

bool parse_front_spec(const std::string& value,
                      std::vector<std::pair<double, double>>* out,
                      std::string* error) {
  out->clear();
  std::size_t start = 0;
  for (std::size_t i = 0; i <= value.size(); ++i) {
    if (i != value.size() && value[i] != ',') continue;
    const std::string point = trim(value.substr(start, i - start));
    start = i + 1;
    if (point.empty()) {
      *error = "expect_front has an empty point";
      return false;
    }
    const std::size_t colon = point.find(':');
    double c = 0, d = 0;
    if (colon == std::string::npos ||
        !parse_double(trim(point.substr(0, colon)), &c) ||
        !parse_double(trim(point.substr(colon + 1)), &d)) {
      *error = "expect_front points are <cost>:<damage>, got '" + point + "'";
      return false;
    }
    out->emplace_back(c, d);
  }
  return true;
}

/// One `key = value` line inside a case body.
bool apply_field(const std::string& key, const std::string& value, Case* c,
                 std::string* error) {
  if (key == "model") return parse_model_spec(value, &c->model, error);
  if (key == "op") {
    if (value == "solve") c->op = CaseOp::Solve;
    else if (value == "sweep") c->op = CaseOp::Sweep;
    else if (value == "sensitivity") c->op = CaseOp::Sensitivity;
    else if (value == "portfolio") c->op = CaseOp::Portfolio;
    else {
      *error = "unknown op '" + value +
               "' (solve | sweep | sensitivity | portfolio)";
      return false;
    }
    return true;
  }
  if (key == "problem") {
    const auto p = api::parse_problem(value);
    if (!p) {
      *error = "unknown problem '" + value + "'";
      return false;
    }
    c->problem = *p;
    return true;
  }
  if (key == "bound" || key == "budget" || key == "step" ||
      key == "expect_cost" || key == "expect_damage") {
    double v = 0;
    if (!parse_double(value, &v)) {
      *error = key + " wants a number, got '" + value + "'";
      return false;
    }
    if (key == "bound") c->bound = v;
    else if (key == "budget") c->budget = v;
    else if (key == "step") c->step = v;
    else if (key == "expect_cost") c->expect.cost = v;
    else c->expect.damage = v;
    return true;
  }
  if (key == "engine") {
    c->engine = value;
    return true;
  }
  if (key == "axis") {
    c->axes.push_back(value);
    return true;
  }
  if (key == "defense") {
    c->defenses.push_back(value);
    return true;
  }
  if (key == "expect_error") {
    const auto code = api::parse_error_code(value);
    if (!code || *code == api::ErrorCode::Ok) {
      *error = "expect_error wants a non-ok api error code name, got '" +
               value + "'";
      return false;
    }
    c->expect.error = *code;
    return true;
  }
  if (key == "expect_infeasible") {
    if (value != "true") {
      *error = "expect_infeasible only takes 'true'";
      return false;
    }
    c->expect.infeasible = true;
    return true;
  }
  if (key == "expect_front") {
    std::vector<std::pair<double, double>> front;
    if (!parse_front_spec(value, &front, error)) return false;
    c->expect.front = std::move(front);
    return true;
  }
  if (key == "expect_hash") {
    if (value.size() != 16 ||
        value.find_first_not_of("0123456789abcdef") != std::string::npos) {
      *error = "expect_hash wants 16 lowercase hex digits, got '" + value +
               "'";
      return false;
    }
    std::uint64_t h = 0;
    for (char ch : value)
      h = (h << 4) | static_cast<std::uint64_t>(
                         ch <= '9' ? ch - '0' : ch - 'a' + 10);
    c->expect.hash = h;
    return true;
  }
  *error = "unknown key '" + key + "'";
  return false;
}

/// Case-level validation once all fields are in: the case must be
/// expressible on every execution path (notably the CLI's subcommands).
bool validate_case(const Case& c, std::string* error) {
  using engine::Problem;
  if (c.model.kind == ModelSpec::Kind::File && c.model.path.empty()) {
    *error = "case '" + c.name + "' has no model";
    return false;
  }
  switch (c.op) {
    case CaseOp::Solve:
      if ((c.problem == Problem::Dgc || c.problem == Problem::Edgc ||
           c.problem == Problem::Cgd || c.problem == Problem::Cged) &&
          !c.bound) {
        *error = "case '" + c.name + "': problem " +
                 engine::to_string(c.problem) + " needs a bound";
        return false;
      }
      break;
    case CaseOp::Sweep:
      if (c.axes.empty() || c.axes.size() > 2) {
        *error = "case '" + c.name + "': sweep wants 1 or 2 axis fields";
        return false;
      }
      break;
    case CaseOp::Sensitivity:
      if (c.problem != Problem::Cdpf && c.problem != Problem::Cedpf) {
        *error = "case '" + c.name +
                 "': sensitivity supports cdpf or cedpf only";
        return false;
      }
      break;
    case CaseOp::Portfolio:
      if (c.problem != Problem::Dgc && c.problem != Problem::Edgc) {
        *error = "case '" + c.name + "': portfolio supports dgc or edgc only";
        return false;
      }
      if (!c.budget) {
        *error = "case '" + c.name + "': portfolio needs a budget";
        return false;
      }
      if (c.defenses.empty()) {
        *error = "case '" + c.name + "': portfolio needs defense fields";
        return false;
      }
      break;
  }
  return true;
}

/// Grows a random model to >= size nodes by repeatedly combining
/// literature blocks — the Sec. X-D construction, sized per case
/// instead of per suite sweep.
AttackTree grow_model(bool treelike, std::size_t size, Rng& rng) {
  const auto blocks =
      treelike ? gen::literature_blocks_treelike() : gen::literature_blocks();
  AttackTree t = blocks[rng.below(blocks.size())].tree;
  int salt = 0;
  while (t.node_count() < size) {
    const AttackTree& other = blocks[rng.below(blocks.size())].tree;
    gen::CombineMethod method;
    if (treelike) {
      method = rng.chance(0.5) ? gen::CombineMethod::LeafSubstitution
                               : gen::CombineMethod::NewRoot;
    } else {
      const auto pick = rng.below(3);
      method = pick == 0   ? gen::CombineMethod::LeafSubstitution
               : pick == 1 ? gen::CombineMethod::NewRoot
                           : gen::CombineMethod::NewRootIdentify;
    }
    t = gen::combine(t, other, method, "s" + std::to_string(salt++), rng);
  }
  return t;
}

}  // namespace

const char* to_string(CaseOp op) {
  switch (op) {
    case CaseOp::Solve: return "solve";
    case CaseOp::Sweep: return "sweep";
    case CaseOp::Sensitivity: return "sensitivity";
    case CaseOp::Portfolio: return "portfolio";
  }
  return "?";
}

bool parse_suite(const std::string& text, Suite* out, std::string* error) {
  *out = Suite{};
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  bool in_case = false;
  Case current;
  auto fail = [&](const std::string& msg) {
    *error = "line " + std::to_string(lineno) + ": " + msg;
    return false;
  };
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (!in_case) {
      if (line.rfind("suite ", 0) == 0) {
        if (!out->name.empty()) return fail("duplicate suite declaration");
        out->name = trim(line.substr(6));
        if (out->name.empty()) return fail("suite needs a name");
        continue;
      }
      if (line.rfind("case ", 0) == 0) {
        if (out->name.empty())
          return fail("the suite must be named before its first case");
        current = Case{};
        current.name = trim(line.substr(5));
        if (current.name.empty()) return fail("case needs a name");
        for (const Case& c : out->cases)
          if (c.name == current.name)
            return fail("duplicate case name '" + current.name + "'");
        in_case = true;
        continue;
      }
      return fail("expected 'suite <name>', 'case <name>' or a comment, "
                  "got '" + line + "'");
    }
    if (line == "end") {
      std::string msg;
      if (!validate_case(current, &msg)) return fail(msg);
      out->cases.push_back(std::move(current));
      in_case = false;
      continue;
    }
    std::string key, value;
    if (!split_kv(line, &key, &value))
      return fail("expected 'key = value' or 'end' inside case '" +
                  current.name + "', got '" + line + "'");
    std::string msg;
    if (!apply_field(key, value, &current, &msg)) return fail(msg);
  }
  if (in_case) {
    *error = "case '" + current.name + "' is missing its 'end'";
    return false;
  }
  if (out->name.empty()) {
    *error = "no 'suite <name>' declaration found";
    return false;
  }
  return true;
}

bool load_suite_file(const std::string& path, Suite* out, std::string* error,
                     std::string* base_dir) {
  std::ifstream file(path);
  if (!file) {
    *error = "cannot open suite file '" + path + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (base_dir) {
    const std::size_t slash = path.find_last_of('/');
    *base_dir = slash == std::string::npos ? "." : path.substr(0, slash);
  }
  if (!parse_suite(buffer.str(), out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

bool materialize_model(const ModelSpec& spec, const std::string& base_dir,
                       std::string* text, std::string* error) {
  try {
    switch (spec.kind) {
      case ModelSpec::Kind::File: {
        std::string path = spec.path;
        if (!path.empty() && path[0] != '/' && !base_dir.empty())
          path = base_dir + "/" + path;
        std::ifstream file(path);
        if (!file) {
          *error = "cannot open model file '" + path + "'";
          return false;
        }
        std::ostringstream buffer;
        buffer << file.rdbuf();
        *text = buffer.str();
        return true;
      }
      case ModelSpec::Kind::Gen: {
        Rng rng(spec.seed * 0x9E3779B97F4A7C15ull + spec.size);
        const AttackTree t = grow_model(spec.treelike, spec.size, rng);
        const CdpAt m = randomize_decorations(t, rng);
        *text = serialize_model(m.tree, m.cost, m.damage, &m.prob);
        return true;
      }
      case ModelSpec::Kind::Lit: {
        for (const gen::Block& b : gen::literature_blocks()) {
          if (spec.block != b.name) continue;
          Rng rng(spec.seed * 0x9E3779B97F4A7C15ull + 17);
          const CdpAt m = randomize_decorations(b.tree, rng);
          *text = serialize_model(m.tree, m.cost, m.damage, &m.prob);
          return true;
        }
        *error = "unknown literature block '" + spec.block + "'";
        return false;
      }
    }
  } catch (const std::exception& e) {
    *error = std::string("model generation failed: ") + e.what();
    return false;
  }
  *error = "unreachable model spec kind";
  return false;
}

api::Request request_of(const Case& c, std::string model_text) {
  api::Request req;
  switch (c.op) {
    case CaseOp::Solve: {
      api::SolveSpec spec;
      spec.problem = c.problem;
      if (c.bound) {
        spec.bound = *c.bound;
        spec.has_bound = true;
      }
      spec.engine = c.engine;
      spec.model = std::move(model_text);
      req.op = api::SolveRequest{std::move(spec)};
      break;
    }
    case CaseOp::Sweep: {
      api::AnalyzeSweepRequest r;
      r.problem = c.problem;
      r.axes = c.axes;
      if (c.bound) {
        r.bound = *c.bound;
        r.has_bound = true;
      }
      r.engine = c.engine;
      r.model = std::move(model_text);
      req.op = std::move(r);
      break;
    }
    case CaseOp::Sensitivity: {
      api::AnalyzeSensitivityRequest r;
      r.problem = c.problem;
      if (c.step) {
        r.step = *c.step;
        r.has_step = true;
      }
      r.engine = c.engine;
      r.model = std::move(model_text);
      req.op = std::move(r);
      break;
    }
    case CaseOp::Portfolio: {
      api::AnalyzePortfolioRequest r;
      r.problem = c.problem;
      r.defenses = c.defenses;
      if (c.budget) {
        r.budget = *c.budget;
        r.has_budget = true;
      }
      if (c.bound) {
        r.bound = *c.bound;
        r.has_bound = true;
      }
      r.engine = c.engine;
      r.model = std::move(model_text);
      req.op = std::move(r);
      break;
    }
  }
  return req;
}

std::uint64_t response_hash(const std::string& line) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a 64
  for (unsigned char ch : line) {
    h ^= ch;
    h *= 0x100000001B3ull;
  }
  return h;
}

std::string hash_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace atcd::suite
