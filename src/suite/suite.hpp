#pragma once
/// \file suite.hpp
/// Declarative scenario suites: one file = one named suite of cases,
/// each case binding a model source, a problem/bound/engine (or one of
/// the analysis operations) and its expected outcome — in the spirit of
/// pbflookup's testsets-*.config files, rendered in this repo's
/// line-oriented idiom.
///
/// A suite file looks like:
///
///   # comments and blank lines anywhere
///   suite golden-fixtures
///
///   case factory/cdpf
///   model = file:../tests/golden/factory.atcd
///   problem = cdpf
///   expect_front = 1:200,3:100
///   end
///
///   case zoo/n40
///   model = gen:tree:42:40
///   problem = dgc
///   bound = 12
///   engine = bottom-up
///   expect_hash = 5f1c2a9e80d14b37
///   end
///
/// Model sources:
///   file:<path>           model text read from <path>, relative to the
///                         suite file's directory
///   gen:tree:<seed>:<n>   seeded random suite model (gen/random_at.hpp),
///   gen:dag:<seed>:<n>    treelike or DAG, grown to >= n nodes, with
///                         paper-range random decorations
///   lit:<block>:<seed>    a literature block (gen/literature.hpp) with
///                         seeded random decorations
///
/// Operations (`op =`, default `solve`): solve, sweep, sensitivity,
/// portfolio — exactly the api::Request operations the CLI can also
/// express, so every case replays byte-identically through the direct
/// dispatcher, atcd_cli --envelope, and the TCP JSON-lines server.
///
/// Expectations (all optional, all checked when present):
///   expect_error = <code>         response must fail with this
///                                 api::ErrorCode wire name
///   expect_infeasible = true      single-objective solve is infeasible
///   expect_cost = <num>           feasible single-objective optimum
///   expect_damage = <num>
///   expect_front = c:d[,c:d...]   the full Pareto front, in response
///                                 order, exact values
///   expect_hash = <16 hex>        FNV-1a 64 of the canonical response
///                                 line (suite::response_hash) — pins
///                                 fronts/tables without spelling them
///                                 out (print with atcd_suite
///                                 --print-expect)
///
/// Parsing never throws: parse_suite() returns false with a typed,
/// line-numbered error for malformed input (unknown keys, bad numbers,
/// fields outside a case, missing `end`, op/problem mismatches, ...).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/api.hpp"

namespace atcd::suite {

/// Where a case's model text comes from.
struct ModelSpec {
  enum class Kind { File, Gen, Lit };
  Kind kind = Kind::File;
  std::string path;          ///< File: path relative to the suite file
  bool treelike = true;      ///< Gen: Ttree vs TDAG generator
  std::uint64_t seed = 0;    ///< Gen/Lit: decoration + structure seed
  std::size_t size = 0;      ///< Gen: grow until node_count >= size
  std::string block;         ///< Lit: literature block name
};

/// The operation a case exercises (CLI-expressible subset of api ops).
enum class CaseOp { Solve, Sweep, Sensitivity, Portfolio };

const char* to_string(CaseOp op);

/// Expected outcome; every present field is checked against the
/// dispatcher path's decoded response.
struct Expect {
  std::optional<api::ErrorCode> error;
  bool infeasible = false;
  std::optional<double> cost;
  std::optional<double> damage;
  std::optional<std::vector<std::pair<double, double>>> front;
  std::optional<std::uint64_t> hash;  ///< suite::response_hash pin
};

struct Case {
  std::string name;
  CaseOp op = CaseOp::Solve;
  engine::Problem problem = engine::Problem::Cdpf;
  ModelSpec model;
  std::optional<double> bound;
  std::optional<double> budget;  ///< Portfolio: defender budget
  std::optional<double> step;    ///< Sensitivity: relative step
  std::string engine;            ///< "" = planner's choice
  std::vector<std::string> axes;      ///< Sweep axis specs
  std::vector<std::string> defenses;  ///< Portfolio defense specs
  Expect expect;
};

struct Suite {
  std::string name;
  std::vector<Case> cases;
};

/// Parses one suite file's text.  Returns false and sets \p error
/// ("line N: ...") on malformed input; never throws on any input.
bool parse_suite(const std::string& text, Suite* out, std::string* error);

/// Reads and parses \p path.  The file's directory becomes the base for
/// file: model specs (returned via \p base_dir when non-null).
bool load_suite_file(const std::string& path, Suite* out, std::string* error,
                     std::string* base_dir = nullptr);

/// Produces the case's model text: reads file: sources relative to
/// \p base_dir, runs the seeded generators for gen:/lit: sources.
/// Returns false + \p error on unreadable files, unknown blocks, or
/// generator failures; never throws.
bool materialize_model(const ModelSpec& spec, const std::string& base_dir,
                       std::string* text, std::string* error);

/// The typed api request a case denotes, with \p model_text already
/// materialized.  Request id is left empty so every transport encodes
/// identical bytes.
api::Request request_of(const Case& c, std::string model_text);

/// FNV-1a 64 over the canonical response line — the value expect_hash
/// pins.  The line must be encoded without micros and with an empty id
/// (what the runner's paths all produce).
std::uint64_t response_hash(const std::string& canonical_response_line);

/// 16-digit lowercase hex of response_hash(), as written in suite files.
std::string hash_hex(std::uint64_t hash);

}  // namespace atcd::suite
