#pragma once
/// \file runner.hpp
/// Replays a scenario suite through independent execution paths and
/// byte-compares their responses, so end-to-end drift between the
/// library facade, the CLI, and the network server fails loudly with a
/// per-case diff instead of lingering until a user trips over it.
///
/// A Path produces, for one case, the canonical v1 JSON response line
/// (api::encode_response with an empty request id and no micros — the
/// deterministic bytes every transport can agree on).  Three stock
/// paths cover the stack:
///
///   dispatcher_path()  — in-process api::Dispatcher::dispatch
///   cli_path(binary)   — spawns `atcd_cli <model> <subcmd> --envelope`
///   server_path()      — an in-process net::Server on an ephemeral
///                        127.0.0.1 port, requests via net::Client
///
/// All stock paths run with the result cache disabled so the `cache`
/// disposition is pinned "miss" everywhere (a one-shot CLI process
/// could never see a hit, so a caching path would drift by design).
///
/// run_suite() replays every case through every path: the first path's
/// response is decoded and checked against the case's expectations;
/// every other path's bytes must equal the first's exactly, and a
/// mismatch reports the case name plus a first-difference diff.  Tests
/// inject custom Paths (e.g. a deliberately corrupting one) to pin the
/// drift detector itself.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "suite/suite.hpp"

namespace atcd::suite {

/// One execution path's outcome for one case.
struct PathOutcome {
  bool ok = false;       ///< the path itself ran (not: the solve succeeded)
  std::string response;  ///< canonical response line (when ok)
  std::string error;     ///< transport/spawn failure (when !ok)
};

struct Path {
  std::string name;
  std::function<PathOutcome(const Case&, const api::Request&,
                            const std::string& model_text)>
      run;
};

/// In-process dispatch through a private, cache-disabled Dispatcher.
Path dispatcher_path();

/// Spawns `<cli_binary> <model-file> <subcommand...> --envelope` per
/// case (model text goes through a temp file) and captures the
/// envelope line the CLI prints.
Path cli_path(std::string cli_binary);

/// Lazily starts a cache-disabled JSON-lines net::Server on an
/// ephemeral port; cases run lockstep through one net::Client.
Path server_path();

/// Lazily starts two cache-disabled workers behind a net::Router
/// (shard-by-canonical-hash) on ephemeral ports; cases run through one
/// net::Client against the router.  Pins the routed fleet to the exact
/// bytes of the in-process dispatcher.
Path router_path();

struct CaseReport {
  std::string name;
  bool ok = false;
  std::vector<std::string> notes;  ///< failures: expectations, drift diffs
};

struct SuiteReport {
  std::string suite;
  std::vector<CaseReport> cases;
  std::size_t failures = 0;
  bool ok() const { return failures == 0; }
};

struct RunnerOptions {
  /// Print `expect_hash = <hex>` per case instead of checking
  /// expectations (suite authoring aid); drift is still checked.
  bool print_expect = false;
};

/// Replays \p suite through \p paths (first path = reference).
/// \p base_dir resolves file: model specs.  Model materialization
/// failures fail the case, never the runner.
SuiteReport run_suite(const Suite& suite, const std::string& base_dir,
                      const std::vector<Path>& paths,
                      const RunnerOptions& options = {});

/// Human-readable report rendering (one PASS/FAIL line per case plus
/// every note, then a summary line).
std::string to_text(const SuiteReport& report);

}  // namespace atcd::suite
