#include "suite/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "api/json.hpp"

namespace atcd::suite {

namespace {

using api::json::Value;

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::string(suffix).size();
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Parses one {"name": ..., metrics...} row object.
bool row_of(const Value& v, TrajectoryRow* out, std::string* error) {
  if (v.kind != Value::Kind::Object) {
    *error = "row is not an object";
    return false;
  }
  out->name.clear();
  out->metrics.clear();
  for (const auto& [key, member] : v.members) {
    if (key == "name") {
      if (member.kind != Value::Kind::String) {
        *error = "row name is not a string";
        return false;
      }
      out->name = member.string;
    } else if (member.kind == Value::Kind::Number) {
      out->metrics.emplace_back(key, member.number);
    } else if (member.kind == Value::Kind::Null) {
      // JsonReport writes non-finite metrics as null; drop them.
    } else {
      *error = "row metric '" + key + "' is not a number";
      return false;
    }
  }
  if (out->name.empty()) {
    *error = "row has no name";
    return false;
  }
  return true;
}

bool area_of(const Value& doc, TrajectoryArea* out, std::string* error) {
  const Value* bench = doc.find("bench");
  const Value* rows = doc.find("rows");
  if (doc.kind != Value::Kind::Object || !bench ||
      bench->kind != Value::Kind::String || !rows ||
      rows->kind != Value::Kind::Array) {
    *error = "expected {\"bench\": <name>, \"rows\": [...]}";
    return false;
  }
  out->bench = bench->string;
  out->rows.clear();
  for (const Value& r : rows->items) {
    TrajectoryRow row;
    if (!row_of(r, &row, error)) {
      *error = "bench '" + out->bench + "': " + *error;
      return false;
    }
    out->rows.push_back(std::move(row));
  }
  return true;
}

}  // namespace

const double* TrajectoryRow::find(const std::string& key) const {
  for (const auto& [k, v] : metrics)
    if (k == key) return &v;
  return nullptr;
}

const TrajectoryRow* TrajectoryArea::find(const std::string& row_name) const {
  for (const TrajectoryRow& r : rows)
    if (r.name == row_name) return &r;
  return nullptr;
}

const TrajectoryArea* Trajectory::find(const std::string& bench) const {
  for (const TrajectoryArea& a : areas)
    if (a.bench == bench) return &a;
  return nullptr;
}

bool parse_bench_report(const std::string& json_text, TrajectoryArea* out,
                        std::string* error) {
  Value doc;
  if (!api::json::parse(json_text, &doc, error)) return false;
  return area_of(doc, out, error);
}

bool merge_trajectory(std::vector<TrajectoryArea> areas, Trajectory* out,
                      std::string* error) {
  std::sort(areas.begin(), areas.end(),
            [](const TrajectoryArea& a, const TrajectoryArea& b) {
              return a.bench < b.bench;
            });
  for (std::size_t i = 1; i < areas.size(); ++i) {
    if (areas[i].bench == areas[i - 1].bench) {
      *error = "duplicate bench area '" + areas[i].bench + "'";
      return false;
    }
  }
  out->version = 1;
  out->areas = std::move(areas);
  return true;
}

std::string dump_trajectory(const Trajectory& t) {
  std::ostringstream out;
  out << "{\n  \"trajectory_version\": " << t.version << ",\n  \"areas\": [";
  for (std::size_t a = 0; a < t.areas.size(); ++a) {
    const TrajectoryArea& area = t.areas[a];
    out << (a ? ",\n" : "\n") << "    {\"bench\": "
        << api::json::dump_string(area.bench) << ", \"rows\": [";
    for (std::size_t r = 0; r < area.rows.size(); ++r) {
      const TrajectoryRow& row = area.rows[r];
      out << (r ? ",\n" : "\n") << "      {\"name\": "
          << api::json::dump_string(row.name);
      for (const auto& [k, v] : row.metrics)
        out << ", " << api::json::dump_string(k) << ": "
            << api::json::dump_number(v);
      out << "}";
    }
    out << (area.rows.empty() ? "]}" : "\n    ]}");
  }
  out << (t.areas.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return out.str();
}

bool parse_trajectory(const std::string& json_text, Trajectory* out,
                      std::string* error) {
  Value doc;
  if (!api::json::parse(json_text, &doc, error)) return false;
  const Value* version = doc.find("trajectory_version");
  const Value* areas = doc.find("areas");
  if (doc.kind != Value::Kind::Object || !version ||
      version->kind != Value::Kind::Number || !areas ||
      areas->kind != Value::Kind::Array) {
    *error = "expected {\"trajectory_version\": 1, \"areas\": [...]}";
    return false;
  }
  if (version->number != 1) {
    *error = "unsupported trajectory version " +
             api::json::dump_number(version->number);
    return false;
  }
  out->version = 1;
  out->areas.clear();
  for (const Value& a : areas->items) {
    TrajectoryArea area;
    if (!area_of(a, &area, error)) return false;
    out->areas.push_back(std::move(area));
  }
  return true;
}

MetricKind classify_metric(const std::string& key) {
  if (contains(key, "speedup") || contains(key, "rps") ||
      contains(key, "req_s") || contains(key, "per_sec"))
    return MetricKind::HigherBetter;
  if (key == "overhead" || key == "pipe_over_socket")
    return MetricKind::LowerBetter;
  if (ends_with(key, "_us") || ends_with(key, "_ms") ||
      ends_with(key, "_s") || contains(key, "micros"))
    return MetricKind::LowerBetter;
  return MetricKind::Informational;
}

bool is_ratio_metric(const std::string& key) {
  return contains(key, "speedup") || key == "overhead" ||
         key == "pipe_over_socket";
}

std::vector<Regression> compare_trajectories(const Trajectory& baseline,
                                             const Trajectory& current,
                                             const CompareOptions& options) {
  std::vector<Regression> out;
  for (const TrajectoryArea& area : baseline.areas) {
    const TrajectoryArea* cur_area = current.find(area.bench);
    if (!cur_area) {
      out.push_back({area.bench, "*", "*", 0.0,
                     std::numeric_limits<double>::quiet_NaN(), 1.0});
      continue;
    }
    for (const TrajectoryRow& row : area.rows) {
      const TrajectoryRow* cur_row = cur_area->find(row.name);
      if (!cur_row) continue;  // rows come and go with bench defaults
      // A speedup computed over sub-noise-floor timings is itself
      // noise: a scheduling hiccup flips micro-measured ratios run to
      // run.  When the row reports its own p50 and both sides sit
      // below the floor, its ratio metrics are not gated.
      const double* base_p50 = row.find("p50_us");
      const double* cur_p50 = cur_row->find("p50_us");
      const bool row_in_noise = base_p50 && cur_p50 &&
                                *base_p50 < options.floor_us &&
                                *cur_p50 < options.floor_us;
      for (const auto& [key, before] : row.metrics) {
        const MetricKind kind = classify_metric(key);
        if (kind == MetricKind::Informational) continue;
        if (options.gate == GateMode::Ratios && !is_ratio_metric(key))
          continue;
        if (row_in_noise && is_ratio_metric(key)) continue;
        const double* after = cur_row->find(key);
        if (!after || !std::isfinite(before) || !std::isfinite(*after))
          continue;
        double change = 0.0;
        if (kind == MetricKind::LowerBetter) {
          // `overhead` hovers around 0 and can be negative; compare the
          // 1+x cost factor instead of the raw value.
          const double b = key == "overhead" ? 1.0 + before : before;
          const double a = key == "overhead" ? 1.0 + *after : *after;
          if (ends_with(key, "_us") && before < options.floor_us &&
              *after < options.floor_us)
            continue;  // sub-noise-floor latencies
          if (b <= 0.0) continue;
          change = a / b - 1.0;
        } else {
          if (*after <= 0.0) {
            change = 1.0;  // a throughput collapsing to zero regressed
          } else {
            change = before / *after - 1.0;
          }
        }
        if (change > options.threshold)
          out.push_back({area.bench, row.name, key, before, *after, change});
      }
    }
  }
  return out;
}

std::string to_text(const std::vector<Regression>& regressions) {
  std::ostringstream out;
  for (const Regression& r : regressions) {
    if (std::isnan(r.after)) {
      out << r.area << ": bench area missing from the new trajectory\n";
      continue;
    }
    out << r.area << "/" << r.row << " " << r.metric << ": "
        << api::json::dump_number(r.before) << " -> "
        << api::json::dump_number(r.after) << " ("
        << api::json::dump_number(r.relative_change * 100.0)
        << "% worse)\n";
  }
  return out.str();
}

}  // namespace atcd::suite
