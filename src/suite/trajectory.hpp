#pragma once
/// \file trajectory.hpp
/// The perf trajectory: every bench area's BENCH_<area>.json report
/// (bench::JsonReport format — one flat metrics object per named row)
/// merged into one versioned BENCH_trajectory.json, plus the
/// per-metric regression comparison against a previous trajectory.
///
/// Comparison semantics: metrics are matched by (area, row, key) and
/// classified by key —
///
///   * lower-is-better:  *_us / *_s / *_ms / *micros* (latencies,
///     wall times) and `overhead`, `pipe_over_socket` (cost ratios)
///   * higher-is-better: *speedup* / *rps* / *req_s* / *per_sec*
///     (throughput, wins)
///   * informational:    everything else (counts, sizes, flags) —
///     carried in the trajectory, never gated
///
/// A regression is a classified metric moving the wrong way by more
/// than the threshold (relative).  Absolute times vary wildly across
/// machines, so GateMode::Ratios (the CI default) gates only the
/// dimensionless metrics — speedups, overheads, transport ratios —
/// which are portable; GateMode::All additionally gates the absolute
/// ones for same-machine comparisons.  Tiny latencies below the noise
/// floor are never gated.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace atcd::suite {

/// One bench report row: insertion-ordered named metrics.
struct TrajectoryRow {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
  const double* find(const std::string& key) const;
};

/// One bench area (one BENCH_<area>.json file).
struct TrajectoryArea {
  std::string bench;
  std::vector<TrajectoryRow> rows;
  const TrajectoryRow* find(const std::string& row_name) const;
};

struct Trajectory {
  int version = 1;
  std::vector<TrajectoryArea> areas;  ///< sorted by bench name
  const TrajectoryArea* find(const std::string& bench) const;
};

/// Parses one BENCH_<area>.json report (bench::JsonReport output).
/// Non-finite metrics ("null" on the wire) are dropped from the row.
bool parse_bench_report(const std::string& json_text, TrajectoryArea* out,
                        std::string* error);

/// Merges areas into a trajectory (areas sorted by name; duplicate
/// bench names rejected).
bool merge_trajectory(std::vector<TrajectoryArea> areas, Trajectory* out,
                      std::string* error);

/// Canonical JSON rendering of a trajectory / its inverse.
std::string dump_trajectory(const Trajectory& t);
bool parse_trajectory(const std::string& json_text, Trajectory* out,
                      std::string* error);

/// How a metric key is compared.
enum class MetricKind { LowerBetter, HigherBetter, Informational };
MetricKind classify_metric(const std::string& key);
/// True for the machine-portable dimensionless metrics (speedups,
/// overheads, transport ratios) that GateMode::Ratios gates.
bool is_ratio_metric(const std::string& key);

enum class GateMode { Ratios, All };

struct CompareOptions {
  double threshold = 0.5;  ///< relative; 0.5 = 50% worse fails
  /// Noise floor: latency metrics with both sides below it are never
  /// gated, and a row whose own p50_us sits below it on both sides has
  /// its ratio metrics skipped too (a speedup measured over
  /// microsecond timings flips with any scheduling hiccup).
  double floor_us = 50.0;
  GateMode gate = GateMode::Ratios;
};

struct Regression {
  std::string area, row, metric;
  double before = 0.0, after = 0.0;
  double relative_change = 0.0;  ///< worsening fraction (always > 0)
};

/// Metrics present in \p baseline but gone from \p current (area or row
/// dropped) are reported as coverage regressions with after = NaN.
std::vector<Regression> compare_trajectories(const Trajectory& baseline,
                                             const Trajectory& current,
                                             const CompareOptions& options);

/// One line per regression, e.g.
/// "net_throughput/socket|mixed rps: 27719 -> 12000 (-56.7%)".
std::string to_text(const std::vector<Regression>& regressions);

}  // namespace atcd::suite
