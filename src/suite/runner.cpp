#include "suite/runner.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "api/dispatcher.hpp"
#include "api/json.hpp"
#include "net/client.hpp"
#include "net/router.hpp"
#include "net/server.hpp"

namespace atcd::suite {

namespace {

/// Cache-disabled dispatcher options: every path must answer
/// cache="miss", matching what a one-shot CLI process reports.
api::Dispatcher::Options pinned_options() {
  api::Dispatcher::Options opt;
  opt.service.enable_cache = false;
  return opt;
}

/// Writes \p text to a fresh temp file; empty string on failure.
std::string write_temp_model(const std::string& text) {
  char path[] = "/tmp/atcd_suite_model_XXXXXX";
  const int fd = ::mkstemp(path);
  if (fd < 0) return {};
  std::size_t off = 0;
  while (off < text.size()) {
    const ::ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n <= 0) {
      ::close(fd);
      ::unlink(path);
      return {};
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return path;
}

/// The atcd_cli subcommand (argv tail) that expresses \p c.
/// validate_case() guarantees every parsed case is expressible.
std::string cli_arguments(const Case& c, const std::string& model_file) {
  using engine::Problem;
  std::ostringstream cmd;
  cmd << '"' << model_file << '"';
  const auto num = [](double v) { return api::json::dump_number(v); };
  switch (c.op) {
    case CaseOp::Solve:
      switch (c.problem) {
        case Problem::Cdpf: cmd << " cdpf"; break;
        case Problem::Cedpf: cmd << " cedpf"; break;
        case Problem::Dgc: cmd << " dgc " << num(c.bound.value_or(0)); break;
        case Problem::Edgc:
          cmd << " dgc " << num(c.bound.value_or(0)) << " --prob";
          break;
        case Problem::Cgd: cmd << " cgd " << num(c.bound.value_or(0)); break;
        case Problem::Cged:
          cmd << " cgd " << num(c.bound.value_or(0)) << " --prob";
          break;
      }
      break;
    case CaseOp::Sweep:
      cmd << " sweep " << engine::to_string(c.problem);
      for (const std::string& axis : c.axes) cmd << " \"" << axis << '"';
      if (c.bound) cmd << " --bound " << num(*c.bound);
      break;
    case CaseOp::Sensitivity:
      cmd << " sensitivity";
      if (c.problem == Problem::Cedpf) cmd << " --prob";
      if (c.step) cmd << " --step " << num(*c.step);
      break;
    case CaseOp::Portfolio:
      cmd << " portfolio " << num(c.budget.value_or(0));
      for (const std::string& d : c.defenses) cmd << " --defense \"" << d
                                                  << '"';
      if (c.problem == Problem::Edgc) cmd << " --prob";
      if (c.bound) cmd << " --bound " << num(*c.bound);
      break;
  }
  if (!c.engine.empty()) cmd << " --engine \"" << c.engine << '"';
  cmd << " --envelope";
  return cmd.str();
}

/// First-difference diff of two response lines, windowed around the
/// mismatch so multi-kilobyte fronts stay readable.
std::string byte_diff(const std::string& ref, const std::string& got) {
  std::size_t i = 0;
  while (i < ref.size() && i < got.size() && ref[i] == got[i]) ++i;
  const auto window = [&](const std::string& s) {
    const std::size_t from = i > 40 ? i - 40 : 0;
    std::string w = s.substr(from, 80);
    if (from > 0) w = "..." + w;
    if (from + 80 < s.size()) w += "...";
    return w;
  };
  std::ostringstream out;
  out << "first difference at byte " << i << "\n      reference: "
      << window(ref) << "\n      observed:  " << window(got);
  return out.str();
}

struct ServerState {
  explicit ServerState()
      : dispatcher(pinned_options()), server(dispatcher, server_options()) {}

  static net::ServerOptions server_options() {
    net::ServerOptions o;
    o.host = "127.0.0.1";
    o.port = 0;  // ephemeral
    return o;
  }

  /// Starts the server and connects the client on first use.
  bool ensure_started(std::string* error) {
    if (client) return true;
    if (!started) {
      if (!server.start(error)) return false;
      started = true;
    }
    std::string err;
    client = std::make_unique<net::Client>("127.0.0.1", server.port(), &err);
    if (!client->valid()) {
      client.reset();
      *error = "connect failed: " + err;
      return false;
    }
    return true;
  }

  ~ServerState() {
    client.reset();  // EOF the connection before draining
    if (started) {
      server.request_drain();
      server.wait();
    }
  }

  api::Dispatcher dispatcher;
  net::Server server;
  std::unique_ptr<net::Client> client;
  bool started = false;
};

/// Two cache-disabled workers behind a shard-by-hash router; one
/// client against the router's port.
struct RouterState {
  RouterState()
      : d0(pinned_options()), d1(pinned_options()),
        w0(d0, ServerState::server_options()),
        w1(d1, ServerState::server_options()) {}

  bool ensure_started(std::string* error) {
    if (client) return true;
    if (!workers_started) {
      if (!w0.start(error)) return false;
      if (!w1.start(error)) return false;
      workers_started = true;
    }
    if (!router) {
      net::RouterOptions ropt;
      ropt.shards = {{"127.0.0.1", w0.port()}, {"127.0.0.1", w1.port()}};
      auto r = std::make_unique<net::Router>(std::move(ropt));
      if (!r->start(error)) return false;
      router = std::move(r);
    }
    std::string err;
    client =
        std::make_unique<net::Client>("127.0.0.1", router->port(), &err);
    if (!client->valid()) {
      client.reset();
      *error = "connect failed: " + err;
      return false;
    }
    return true;
  }

  ~RouterState() {
    client.reset();  // EOF the router connection first
    if (router) {
      router->request_drain();
      router->wait();
    }
    if (workers_started) {
      w0.request_drain();
      w1.request_drain();
      w0.wait();
      w1.wait();
    }
  }

  api::Dispatcher d0, d1;
  net::Server w0, w1;
  std::unique_ptr<net::Router> router;
  std::unique_ptr<net::Client> client;
  bool workers_started = false;
};

/// Checks the case's expectations against the decoded reference
/// response; failures are appended to \p notes.
void check_expectations(const Case& c, const std::string& line,
                        std::vector<std::string>* notes) {
  const Expect& e = c.expect;
  if (e.hash && *e.hash != response_hash(line))
    notes->push_back("expect_hash " + hash_hex(*e.hash) +
                     " != response hash " + hash_hex(response_hash(line)));

  const auto decoded = api::decode_response(line);
  if (decoded.code != api::ErrorCode::Ok) {
    notes->push_back("reference response undecodable: " + decoded.error);
    return;
  }
  const api::Response& resp = decoded.value;
  if (e.error) {
    if (resp.code != *e.error)
      notes->push_back(std::string("expect_error ") + api::to_string(*e.error) +
                       " but response code is " + api::to_string(resp.code) +
                       (resp.error.empty() ? "" : " (" + resp.error + ")"));
    return;
  }
  const bool wants_payload = e.infeasible || e.cost || e.damage ||
                             e.front.has_value();
  if (resp.code != api::ErrorCode::Ok) {
    if (wants_payload)
      notes->push_back(std::string("expected a result but got ") +
                       api::to_string(resp.code) + ": " + resp.error);
    return;
  }
  if (!wants_payload) return;
  const auto* solve = std::get_if<api::SolvePayload>(&resp.payload);
  if (!solve) {
    notes->push_back("expected a solve payload (expect_front/cost/... on a "
                     "non-solve op?)");
    return;
  }
  if (e.infeasible && (solve->is_front || solve->feasible))
    notes->push_back("expected infeasible, got a result");
  if (e.cost || e.damage) {
    if (solve->is_front || !solve->feasible) {
      notes->push_back("expect_cost/expect_damage need a feasible "
                       "single-objective result");
    } else {
      if (e.cost && solve->cost != *e.cost)
        notes->push_back("expect_cost " + api::json::dump_number(*e.cost) +
                         " != " + api::json::dump_number(solve->cost));
      if (e.damage && solve->damage != *e.damage)
        notes->push_back("expect_damage " + api::json::dump_number(*e.damage) +
                         " != " + api::json::dump_number(solve->damage));
    }
  }
  if (e.front) {
    if (!solve->is_front) {
      notes->push_back("expect_front on a non-front result");
    } else if (solve->points.size() != e.front->size()) {
      notes->push_back("expect_front has " + std::to_string(e.front->size()) +
                       " points, response has " +
                       std::to_string(solve->points.size()));
    } else {
      for (std::size_t i = 0; i < e.front->size(); ++i) {
        const auto& [ec, ed] = (*e.front)[i];
        if (solve->points[i].cost != ec || solve->points[i].damage != ed) {
          notes->push_back(
              "front point " + std::to_string(i) + " is (" +
              api::json::dump_number(solve->points[i].cost) + ", " +
              api::json::dump_number(solve->points[i].damage) +
              "), expected (" + api::json::dump_number(ec) + ", " +
              api::json::dump_number(ed) + ")");
          break;
        }
      }
    }
  }
}

}  // namespace

Path dispatcher_path() {
  auto dispatcher = std::make_shared<api::Dispatcher>(pinned_options());
  return {"dispatcher",
          [dispatcher](const Case&, const api::Request& req,
                       const std::string&) {
            PathOutcome out;
            out.response =
                api::encode_response(dispatcher->dispatch(req), false);
            out.ok = true;
            return out;
          }};
}

Path cli_path(std::string cli_binary) {
  return {"cli", [cli_binary](const Case& c, const api::Request&,
                              const std::string& model_text) {
            PathOutcome out;
            const std::string model_file = write_temp_model(model_text);
            if (model_file.empty()) {
              out.error = "cannot create temp model file";
              return out;
            }
            const std::string cmd = '"' + cli_binary + "\" " +
                                    cli_arguments(c, model_file) +
                                    " 2>/dev/null";
            std::FILE* pipe = ::popen(cmd.c_str(), "r");
            if (!pipe) {
              ::unlink(model_file.c_str());
              out.error = "popen failed for: " + cmd;
              return out;
            }
            std::string output;
            char buf[4096];
            std::size_t n = 0;
            while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0)
              output.append(buf, n);
            ::pclose(pipe);  // nonzero exit is fine: errors still envelope
            ::unlink(model_file.c_str());
            while (!output.empty() &&
                   (output.back() == '\n' || output.back() == '\r'))
              output.pop_back();
            if (output.empty()) {
              out.error = "cli produced no envelope for: " + cmd;
              return out;
            }
            out.response = output;
            out.ok = true;
            return out;
          }};
}

Path server_path() {
  auto state = std::make_shared<ServerState>();
  return {"server", [state](const Case&, const api::Request& req,
                            const std::string&) {
            PathOutcome out;
            if (!state->ensure_started(&out.error)) return out;
            if (!state->client->request(api::encode_request(req),
                                        &out.response)) {
              state->client.reset();  // reconnect on the next case
              out.error = "server connection failed mid-request";
              return out;
            }
            out.ok = true;
            return out;
          }};
}

Path router_path() {
  auto state = std::make_shared<RouterState>();
  return {"router", [state](const Case&, const api::Request& req,
                            const std::string&) {
            PathOutcome out;
            if (!state->ensure_started(&out.error)) return out;
            if (!state->client->request(api::encode_request(req),
                                        &out.response)) {
              state->client.reset();  // reconnect on the next case
              out.error = "router connection failed mid-request";
              return out;
            }
            out.ok = true;
            return out;
          }};
}

SuiteReport run_suite(const Suite& suite, const std::string& base_dir,
                      const std::vector<Path>& paths,
                      const RunnerOptions& options) {
  SuiteReport report;
  report.suite = suite.name;
  for (const Case& c : suite.cases) {
    CaseReport cr;
    cr.name = c.name;
    std::string model_text, error;
    if (!materialize_model(c.model, base_dir, &model_text, &error)) {
      cr.notes.push_back("model: " + error);
      ++report.failures;
      report.cases.push_back(std::move(cr));
      continue;
    }
    const api::Request req = request_of(c, model_text);

    std::string reference;
    bool have_reference = false;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      const PathOutcome out = paths[i].run(c, req, model_text);
      if (!out.ok) {
        cr.notes.push_back(paths[i].name + ": " + out.error);
        continue;
      }
      if (i == 0) {
        have_reference = true;
        reference = out.response;
        if (options.print_expect)
          cr.notes.push_back("expect_hash = " +
                             hash_hex(response_hash(reference)));
        else
          check_expectations(c, reference, &cr.notes);
      } else if (have_reference && out.response != reference) {
        cr.notes.push_back("DRIFT " + paths[i].name + " vs " +
                           paths[0].name + ": " +
                           byte_diff(reference, out.response));
      }
    }
    cr.ok = options.print_expect
                ? cr.notes.size() == 1  // just the expect_hash note
                : cr.notes.empty();
    if (!cr.ok) ++report.failures;
    report.cases.push_back(std::move(cr));
  }
  return report;
}

std::string to_text(const SuiteReport& report) {
  std::ostringstream out;
  out << "suite " << report.suite << " (" << report.cases.size()
      << " cases)\n";
  for (const CaseReport& c : report.cases) {
    out << "  [" << (c.ok ? "PASS" : "FAIL") << "] " << c.name << "\n";
    for (const std::string& n : c.notes) out << "    " << n << "\n";
  }
  out << (report.ok() ? "OK" : "FAILED") << ": " << report.cases.size()
      << " cases, " << report.failures << " failures\n";
  return out.str();
}

}  // namespace atcd::suite
