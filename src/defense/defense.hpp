#pragma once
/// \file defense.hpp
/// Defender-side countermeasure selection on top of cost-damage analysis.
///
/// The paper's case study reads its Pareto fronts as defense advice
/// ("security improvements should focus on ...; after defenses are put in
/// place, a new cost-damage analysis is needed").  This module closes
/// that loop: given a catalogue of countermeasures — each with a
/// deployment cost, each hardening a set of BASs — it searches defense
/// portfolios and scores every portfolio by the *residual risk*, i.e. the
/// attacker's DgC value on the hardened model.
///
/// Hardening semantics: a hardened BAS becomes unattractive rather than
/// structurally removed — its cost is multiplied by `cost_factor` (or
/// made unaffordable with `cost_factor = infinity`) and, in probabilistic
/// models, its success probability is multiplied by `prob_factor`.
/// Structural removal would be wrong for AND-gates (removing a child
/// conjunct *helps* the attacker).
///
/// Outputs the defense-cost / residual-damage Pareto front: the defender
/// analogue of CDPF.  Exhaustive over portfolios (catalogues are small in
/// practice; capacity-guarded) with an optional greedy mode for larger
/// catalogues.

#include <limits>
#include <string>
#include <vector>

#include "core/cdat.hpp"
#include "pareto/front2d.hpp"

namespace atcd::defense {

/// One deployable countermeasure.
struct Countermeasure {
  std::string name;
  double cost = 0.0;                      ///< deployment cost
  std::vector<std::string> hardened_bas;  ///< BAS names it hardens
};

struct HardeningSemantics {
  /// Multiplier on the cost of a hardened BAS; infinity = infeasible.
  double cost_factor = std::numeric_limits<double>::infinity();
  /// Multiplier on the success probability (probabilistic models).
  double prob_factor = 0.0;
};

/// A point of the defender front.
struct DefensePoint {
  double defense_cost = 0.0;
  double residual_damage = 0.0;  ///< attacker's DgC on the hardened model
  std::vector<std::string> portfolio;  ///< countermeasure names
};

struct DefenseOptions {
  /// The attacker budget used to evaluate residual damage (DgC's U).
  double attacker_budget = std::numeric_limits<double>::infinity();
  HardeningSemantics semantics;
  /// Exhaustive search cap: 2^|catalogue| portfolios.
  std::size_t max_exhaustive = 16;
};

/// Applies a set of countermeasures to a model.
CdAt harden(const CdAt& m, const std::vector<Countermeasure>& catalogue,
            const std::vector<bool>& selected, const HardeningSemantics& s);
CdpAt harden(const CdpAt& m, const std::vector<Countermeasure>& catalogue,
             const std::vector<bool>& selected, const HardeningSemantics& s);

/// The defender's Pareto front (defense cost vs residual damage), by
/// exhaustive portfolio enumeration.  Throws CapacityError beyond
/// opt.max_exhaustive countermeasures.
std::vector<DefensePoint> defense_front(
    const CdAt& m, const std::vector<Countermeasure>& catalogue,
    const DefenseOptions& opt = {});

/// Greedy portfolio for a defense budget: repeatedly add the
/// countermeasure with the best residual-damage reduction per cost until
/// the budget is exhausted.  Not optimal (set-cover-like), but scales;
/// returns the greedy sequence with intermediate residuals.
std::vector<DefensePoint> greedy_defense(
    const CdAt& m, const std::vector<Countermeasure>& catalogue,
    double defense_budget, const DefenseOptions& opt = {});

}  // namespace atcd::defense
