#include "defense/defense.hpp"

#include <algorithm>
#include <cmath>

#include "core/problems.hpp"

namespace atcd::defense {
namespace {

/// Resolves catalogue BAS names once; throws on unknown/internal names.
std::vector<std::vector<std::uint32_t>> resolve(
    const AttackTree& t, const std::vector<Countermeasure>& catalogue) {
  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(catalogue.size());
  for (const auto& cm : catalogue) {
    std::vector<std::uint32_t> idx;
    for (const auto& name : cm.hardened_bas) {
      const auto id = t.find(name);
      if (!id || !t.is_bas(*id))
        throw ModelError("defense: countermeasure '" + cm.name +
                         "' names unknown BAS '" + name + "'");
      idx.push_back(t.bas_index(*id));
    }
    out.push_back(std::move(idx));
  }
  return out;
}

void apply(std::vector<double>& cost, std::vector<double>* prob,
           const std::vector<std::vector<std::uint32_t>>& resolved,
           const std::vector<bool>& selected, const HardeningSemantics& s) {
  for (std::size_t k = 0; k < resolved.size(); ++k) {
    if (!selected[k]) continue;
    for (const auto i : resolved[k]) {
      if (std::isinf(s.cost_factor))
        cost[i] = std::numeric_limits<double>::infinity();
      else
        cost[i] *= s.cost_factor;
      if (prob) (*prob)[i] *= s.prob_factor;
    }
  }
  // Engines require finite costs; "infeasible" is modelled as a cost
  // beyond any conceivable budget.
  for (auto& c : cost)
    if (std::isinf(c)) c = 1e15;
}

double residual(const CdAt& m, double attacker_budget) {
  // "Unbounded" must still exclude the 1e15 infeasibility sentinel —
  // an attacker with a literally infinite budget would ignore hardening
  // altogether.  1e12 is far above any realistic model cost and far
  // below the sentinel.
  if (std::isinf(attacker_budget)) attacker_budget = 1e12;
  return dgc(m, attacker_budget).damage;
}

}  // namespace

CdAt harden(const CdAt& m, const std::vector<Countermeasure>& catalogue,
            const std::vector<bool>& selected, const HardeningSemantics& s) {
  if (selected.size() != catalogue.size())
    throw ModelError("defense: selection size mismatch");
  CdAt out = m;
  apply(out.cost, nullptr, resolve(m.tree, catalogue), selected, s);
  return out;
}

CdpAt harden(const CdpAt& m, const std::vector<Countermeasure>& catalogue,
             const std::vector<bool>& selected, const HardeningSemantics& s) {
  if (selected.size() != catalogue.size())
    throw ModelError("defense: selection size mismatch");
  CdpAt out = m;
  apply(out.cost, &out.prob, resolve(m.tree, catalogue), selected, s);
  return out;
}

std::vector<DefensePoint> defense_front(
    const CdAt& m, const std::vector<Countermeasure>& catalogue,
    const DefenseOptions& opt) {
  m.validate();
  if (catalogue.size() > opt.max_exhaustive)
    throw CapacityError("defense_front: catalogue of " +
                        std::to_string(catalogue.size()) +
                        " exceeds the exhaustive cap; use greedy_defense");
  const auto resolved = resolve(m.tree, catalogue);
  (void)resolved;  // name validation up front

  struct Raw {
    double cost, damage;
    std::uint64_t mask;
  };
  std::vector<Raw> raws;
  const std::uint64_t total = std::uint64_t{1} << catalogue.size();
  for (std::uint64_t mask = 0; mask < total; ++mask) {
    std::vector<bool> sel(catalogue.size());
    double dcost = 0.0;
    for (std::size_t k = 0; k < catalogue.size(); ++k) {
      sel[k] = (mask >> k) & 1;
      if (sel[k]) dcost += catalogue[k].cost;
    }
    const CdAt hardened = harden(m, catalogue, sel, opt.semantics);
    raws.push_back({dcost, residual(hardened, opt.attacker_budget), mask});
  }
  // Defender Pareto: minimize both defense cost and residual damage.
  std::sort(raws.begin(), raws.end(), [](const Raw& a, const Raw& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.damage < b.damage;
  });
  std::vector<DefensePoint> front;
  double best = std::numeric_limits<double>::infinity();
  for (const auto& r : raws) {
    if (r.damage < best) {
      best = r.damage;
      DefensePoint p;
      p.defense_cost = r.cost;
      p.residual_damage = r.damage;
      for (std::size_t k = 0; k < catalogue.size(); ++k)
        if ((r.mask >> k) & 1) p.portfolio.push_back(catalogue[k].name);
      front.push_back(std::move(p));
    }
  }
  return front;
}

std::vector<DefensePoint> greedy_defense(
    const CdAt& m, const std::vector<Countermeasure>& catalogue,
    double defense_budget, const DefenseOptions& opt) {
  m.validate();
  (void)resolve(m.tree, catalogue);
  std::vector<bool> selected(catalogue.size(), false);
  double spent = 0.0;
  std::vector<DefensePoint> trace;
  double current =
      residual(harden(m, catalogue, selected, opt.semantics),
               opt.attacker_budget);
  trace.push_back({0.0, current, {}});

  for (;;) {
    int best_k = -1;
    double best_ratio = 0.0, best_residual = current;
    for (std::size_t k = 0; k < catalogue.size(); ++k) {
      if (selected[k] || catalogue[k].cost + spent > defense_budget) continue;
      auto trial = selected;
      trial[k] = true;
      const double r = residual(harden(m, catalogue, trial, opt.semantics),
                                opt.attacker_budget);
      const double gain = current - r;
      const double ratio = gain / std::max(1e-12, catalogue[k].cost);
      if (gain > 1e-12 && ratio > best_ratio) {
        best_ratio = ratio;
        best_k = static_cast<int>(k);
        best_residual = r;
      }
    }
    if (best_k < 0) break;
    selected[static_cast<std::size_t>(best_k)] = true;
    spent += catalogue[static_cast<std::size_t>(best_k)].cost;
    current = best_residual;
    DefensePoint p = trace.back();
    p.defense_cost = spent;
    p.residual_damage = current;
    p.portfolio.push_back(catalogue[static_cast<std::size_t>(best_k)].name);
    trace.push_back(std::move(p));
  }
  return trace;
}

}  // namespace atcd::defense
