#include "analysis/sweep.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "pareto/metrics.hpp"

namespace atcd::analysis {
namespace {

service::Session::Options session_options(const Options& opt) {
  service::Session::Options s;
  s.problem = opt.problem;
  s.bound = opt.bound;
  s.engine_name = opt.engine_name;
  s.batch = opt.batch;
  s.shared = opt.shared;
  s.hardening = opt.hardening;
  // The sweep consumes only Response::result; skipping the per-point
  // model snapshot keeps each grid edit O(depth) instead of forcing a
  // copy-on-write model clone per point.
  s.snapshots = false;
  return s;
}

/// Up-front axis validation, so a bad grid fails before the first solve
/// and mid-sweep edits can only fail for solver reasons (which land in
/// the cell results).  Throws ModelError naming the offending axis.
void validate_axes(const AttackTree& tree, bool probabilistic,
                   const std::vector<Axis>& axes) {
  if (axes.empty() || axes.size() > 2)
    throw ModelError("sweep: takes 1 or 2 axes, got " +
                     std::to_string(axes.size()));
  if (axes.size() == 2 && axes[0].attribute == axes[1].attribute &&
      axes[0].node == axes[1].node)
    throw ModelError("sweep: both axes target " +
                     std::string(to_string(axes[0].attribute)) + " of '" +
                     axes[0].node + "'");
  for (const Axis& axis : axes) {
    const std::string where = std::string("sweep: axis ") +
                              to_string(axis.attribute) + ":" + axis.node;
    if (axis.values.empty()) throw ModelError(where + " has no grid values");
    const auto v = tree.find(axis.node);
    if (!v) throw ModelError(where + ": no node named '" + axis.node + "'");
    if (axis.attribute != Attribute::Damage && !tree.is_bas(*v))
      throw ModelError(where + ": '" + axis.node + "' is not a BAS");
    if (axis.attribute == Attribute::Prob && !probabilistic)
      throw ModelError(where + ": the problem is deterministic");
    for (const double value : axis.values) {
      if (axis.attribute == Attribute::Prob &&
          !(value >= 0.0 && value <= 1.0))
        throw ModelError(where + ": probability values must lie in [0,1]");
      if ((axis.attribute == Attribute::Cost ||
           axis.attribute == Attribute::Damage) &&
          !(value >= 0.0))
        throw ModelError(where + ": values must be >= 0");
    }
  }
}

/// Applies one axis value as a session edit.  Defense axes are stateful
/// toggles, so the current hardened state rides along in \p defended.
std::string apply(service::Session& session, const Axis& axis, double value,
                  bool* defended) {
  switch (axis.attribute) {
    case Attribute::Cost:
      return session.set_cost(axis.node, value);
    case Attribute::Prob:
      return session.set_prob(axis.node, value);
    case Attribute::Damage:
      return session.set_damage(axis.node, value);
    case Attribute::Defense: {
      const bool want = value != 0.0;
      if (want == *defended) return {};
      *defended = want;
      return session.toggle_defense(axis.node);
    }
  }
  return "sweep: unreachable attribute";
}

template <class Model>
SweepResult sweep_impl(const Model& m, std::vector<Axis> axes,
                       const Options& opt) {
  validate_axes(m.tree, engine::is_probabilistic(opt.problem), axes);
  SweepResult out;
  out.problem = opt.problem;
  out.incremental = m.tree.is_treelike();

  service::Session session(m, session_options(opt));
  bool defended[2] = {false, false};
  const Axis& ax = axes[0];
  const std::size_t rows = axes.size() == 2 ? axes[1].values.size() : 1;
  out.cells.reserve(ax.values.size() * rows);
  for (std::size_t yi = 0; yi < rows; ++yi) {
    const double yv = axes.size() == 2 ? axes[1].values[yi] : 0.0;
    if (axes.size() == 2)
      if (const std::string err = apply(session, axes[1], yv, &defended[1]);
          !err.empty())
        throw ModelError("sweep: " + err);
    for (const double xv : ax.values) {
      if (const std::string err = apply(session, ax, xv, &defended[0]);
          !err.empty())
        throw ModelError("sweep: " + err);
      SweepCell cell;
      cell.x = xv;
      cell.y = yv;
      cell.result = session.resolve().result;
      out.cells.push_back(std::move(cell));
    }
  }
  out.axes = std::move(axes);
  out.memo = session.memo_stats();
  return out;
}

}  // namespace

SweepResult sweep(const CdAt& m, std::vector<Axis> axes, const Options& opt) {
  return sweep_impl(m, std::move(axes), opt);
}

SweepResult sweep(const CdpAt& m, std::vector<Axis> axes,
                  const Options& opt) {
  return sweep_impl(m, std::move(axes), opt);
}

std::string to_table(const SweepResult& r) {
  const bool two_d = r.axes.size() == 2;
  const bool front = engine::is_front(r.problem);
  std::ostringstream out;
  out << "# sweep problem=" << engine::to_string(r.problem);
  for (std::size_t i = 0; i < r.axes.size(); ++i)
    out << ' ' << "xy"[i] << '=' << to_string(r.axes[i].attribute) << ':'
        << r.axes[i].node;
  // The hypervolume reference is a pure function of the sweep results
  // (max point cost over every cell's front), keeping the rendering
  // deterministic without a caller-supplied reference.
  double ref_cost = 0.0;
  if (front)
    for (const SweepCell& c : r.cells)
      for (const FrontPoint& p : c.result.front)
        ref_cost = std::max(ref_cost, p.value.cost);
  if (front) out << " hv-ref=" << format_num(ref_cost);
  out << '\n';
  out << 'x' << (two_d ? "\ty" : "")
      << (front ? "\tpoints\thypervolume" : "\tfeasible\tcost\tdamage")
      << '\n';
  for (const SweepCell& c : r.cells) {
    out << format_num(c.x);
    if (two_d) out << '\t' << format_num(c.y);
    if (!c.result.ok) {
      std::string err = c.result.error;
      std::replace(err.begin(), err.end(), '\n', ' ');
      out << "\terror=" << err << '\n';
      continue;
    }
    if (front) {
      out << '\t' << c.result.front.size() << '\t'
          << format_num(hypervolume(c.result.front, ref_cost)) << '\n';
    } else if (!c.result.attack.feasible) {
      out << "\tfalse\t-\t-\n";
    } else {
      out << "\ttrue\t" << format_num(c.result.attack.cost) << '\t'
          << format_num(c.result.attack.damage) << '\n';
    }
  }
  return out.str();
}

}  // namespace atcd::analysis
