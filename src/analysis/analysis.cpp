#include "analysis/analysis.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace atcd::analysis {
namespace {

/// Splits \p s on \p sep; no escaping (node names cannot contain ':').
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i)
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  return out;
}

bool parse_num(const std::string& tok, double* value) {
  std::size_t consumed = 0;
  try {
    *value = std::stod(tok, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  return consumed == tok.size() && std::isfinite(*value);
}

std::optional<Attribute> parse_attribute(const std::string& name) {
  if (name == "cost") return Attribute::Cost;
  if (name == "prob") return Attribute::Prob;
  if (name == "damage") return Attribute::Damage;
  if (name == "defense") return Attribute::Defense;
  return std::nullopt;
}

}  // namespace

const char* to_string(Attribute a) {
  switch (a) {
    case Attribute::Cost:
      return "cost";
    case Attribute::Prob:
      return "prob";
    case Attribute::Damage:
      return "damage";
    case Attribute::Defense:
      return "defense";
  }
  return "?";
}

Axis Axis::linspace(Attribute attribute, std::string node, double lo,
                    double hi, std::size_t steps) {
  Axis axis;
  axis.attribute = attribute;
  axis.node = std::move(node);
  if (steps == 0) return axis;
  axis.values.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i)
    axis.values.push_back(
        steps == 1 ? lo
                   : lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(steps - 1));
  return axis;
}

Axis Axis::toggle(std::string bas) {
  Axis axis;
  axis.attribute = Attribute::Defense;
  axis.node = std::move(bas);
  axis.values = {0.0, 1.0};
  return axis;
}

std::optional<Axis> parse_axis(const std::string& spec, std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<Axis> {
    if (error)
      *error = "bad axis '" + spec + "': " + why +
               " (expected <attr>:<node>:<lo>:<hi>:<steps> with <attr> in "
               "cost|prob|damage, or defense:<bas>)";
    return std::nullopt;
  };
  const std::vector<std::string> parts = split(spec, ':');
  if (parts.empty() || parts[0].empty()) return fail("missing attribute");
  const auto attr = parse_attribute(parts[0]);
  if (!attr) return fail("unknown attribute '" + parts[0] + "'");
  if (*attr == Attribute::Defense) {
    if (parts.size() != 2 || parts[1].empty())
      return fail("defense axes take exactly one BAS name");
    return Axis::toggle(parts[1]);
  }
  if (parts.size() != 5) return fail("expected 5 ':'-separated fields");
  if (parts[1].empty()) return fail("missing node name");
  double lo = 0.0, hi = 0.0, steps = 0.0;
  if (!parse_num(parts[2], &lo) || !parse_num(parts[3], &hi))
    return fail("lo/hi must be finite numbers");
  if (!parse_num(parts[4], &steps) || steps < 1.0 ||
      steps != std::floor(steps) || steps > 1e6)
    return fail("steps must be a positive integer");
  return Axis::linspace(*attr, parts[1], lo, hi,
                        static_cast<std::size_t>(steps));
}

std::string format_num(double v) {
  // %.17g round-trips every double; prefer the shorter %.15g rendering
  // when it parses back exactly (it does for almost all model inputs),
  // so tables stay human-readable without sacrificing byte-stability.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.15g", v);
  if (std::strtod(buf, nullptr) != v)
    std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::optional<defense::Countermeasure> parse_countermeasure(
    const std::string& spec, std::string* error) {
  const auto fail =
      [&](const std::string& why) -> std::optional<defense::Countermeasure> {
    if (error)
      *error = "bad defense '" + spec + "': " + why +
               " (expected <name>:<cost>:<bas>[+<bas>...])";
    return std::nullopt;
  };
  const std::vector<std::string> parts = split(spec, ':');
  if (parts.size() != 3) return fail("expected 3 ':'-separated fields");
  if (parts[0].empty()) return fail("missing name");
  defense::Countermeasure cm;
  cm.name = parts[0];
  if (!parse_num(parts[1], &cm.cost) || cm.cost < 0.0)
    return fail("cost must be a finite number >= 0");
  for (const std::string& bas : split(parts[2], '+')) {
    if (bas.empty()) return fail("empty BAS name");
    cm.hardened_bas.push_back(bas);
  }
  return cm;
}

}  // namespace atcd::analysis
