#include "analysis/portfolio.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

namespace atcd::analysis {
namespace {

/// The attacker budget the residual solves actually run with.  A
/// literally infinite budget would let the attacker ignore hardening
/// altogether (hardened leaves stay attackable at cost_factor-scaled
/// cost), so "unbounded" means twice the model's total base leaf cost
/// (+1 for all-zero-cost models): every un-hardened attack is
/// affordable with slack, while a hardened leaf stays affordable only
/// when its base cost is below ~2/cost_factor of the model total —
/// negligible at the default factor.  Scale-aware, unlike defense.cpp's
/// fixed 1e12 (which pairs with *infinite* hardening's 1e15 sentinel).
double effective_attacker_budget(double bound,
                                 const std::vector<double>& base_cost) {
  if (!std::isinf(bound)) return bound;
  double total = 0.0;
  for (double c : base_cost) total += c;
  return 2.0 * total + 1.0;
}

bool lex_less(const std::vector<std::string>& a,
              const std::vector<std::string>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

template <class Model>
PortfolioResult portfolio_impl(
    const Model& m, const std::vector<defense::Countermeasure>& catalogue,
    double defense_budget, const Options& opt) {
  constexpr bool probabilistic = std::is_same_v<Model, CdpAt>;
  if (catalogue.size() > opt.max_portfolio_defenses)
    throw CapacityError(
        "portfolio: catalogue of " + std::to_string(catalogue.size()) +
        " defenses exceeds the exhaustive cap of " +
        std::to_string(opt.max_portfolio_defenses));

  PortfolioResult out;
  out.problem = probabilistic ? engine::Problem::Edgc : engine::Problem::Dgc;
  out.defense_budget = defense_budget;
  out.attacker_budget = effective_attacker_budget(opt.bound, m.cost);

  // Budget-pruned DFS over defense toggles (exclude branch first, so
  // subsets come out in bitmask order — a fixed, thread-independent
  // scenario order).  Every affordable subset becomes one hardened
  // scenario; unaffordable inclusions are cut together with all their
  // supersets.
  const std::size_t n = catalogue.size();
  std::vector<PortfolioPoint> points;
  std::vector<std::vector<bool>> selections;
  std::vector<bool> selection(n, false);
  const auto dfs = [&](const auto& self, std::size_t k,
                       double invest) -> void {
    if (k == n) {
      PortfolioPoint p;
      p.invest = invest;
      for (std::size_t i = 0; i < n; ++i)
        if (selection[i]) p.selected.push_back(catalogue[i].name);
      points.push_back(std::move(p));
      selections.push_back(selection);
      return;
    }
    self(self, k + 1, invest);
    if (invest + catalogue[k].cost <= defense_budget) {
      selection[k] = true;
      self(self, k + 1, invest + catalogue[k].cost);
      selection[k] = false;
    }
  };
  dfs(dfs, 0, 0.0);
  out.evaluated = points.size();
  out.pruned = (std::uint64_t{1} << n) - out.evaluated;

  // Solve the hardened scenarios in fixed-size chunks: materialize a
  // chunk of model copies (instances borrow them, so the vector must
  // never reallocate under them), fan it through solve_all, score, and
  // discard — 2^20 affordable subsets must not mean 2^20 resident
  // whole-model copies.  Chunking cannot change results: every
  // instance is solved independently.
  engine::BatchOptions batch = opt.batch;
  if (!batch.subtree && opt.shared) batch.subtree = opt.shared;
  constexpr std::size_t kChunk = 1024;
  std::vector<Model> models;
  std::vector<engine::Instance> instances;
  for (std::size_t base = 0; base < selections.size(); base += kChunk) {
    const std::size_t count = std::min(kChunk, selections.size() - base);
    models.clear();
    instances.clear();
    models.reserve(count);
    instances.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      models.push_back(
          defense::harden(m, catalogue, selections[base + i], opt.hardening));
      instances.push_back(engine::Instance::of(
          out.problem, models.back(), out.attacker_budget, opt.engine_name));
    }
    const std::vector<engine::SolveResult> results =
        engine::solve_all(instances, batch);
    for (std::size_t i = 0; i < count; ++i) {
      if (!results[i].ok)
        throw Error("portfolio: residual solve failed: " + results[i].error);
      points[base + i].residual =
          results[i].attack.feasible ? results[i].attack.damage : 0.0;
    }
  }

  // Frontier: ascending investment, strictly descending residual; ties
  // resolve toward the cheaper, lexicographically earlier portfolio.
  std::sort(points.begin(), points.end(),
            [](const PortfolioPoint& a, const PortfolioPoint& b) {
              if (a.invest != b.invest) return a.invest < b.invest;
              if (a.residual != b.residual) return a.residual < b.residual;
              return lex_less(a.selected, b.selected);
            });
  double best_residual = std::numeric_limits<double>::infinity();
  for (PortfolioPoint& p : points)
    if (p.residual < best_residual) {
      best_residual = p.residual;
      out.frontier.push_back(std::move(p));
    }
  out.best = out.frontier.back();  // never empty: the empty portfolio
  return out;
}

}  // namespace

PortfolioResult portfolio(const CdAt& m,
                          const std::vector<defense::Countermeasure>& catalogue,
                          double defense_budget, const Options& opt) {
  return portfolio_impl(m, catalogue, defense_budget, opt);
}

PortfolioResult portfolio(const CdpAt& m,
                          const std::vector<defense::Countermeasure>& catalogue,
                          double defense_budget, const Options& opt) {
  return portfolio_impl(m, catalogue, defense_budget, opt);
}

std::string to_table(const PortfolioResult& r) {
  std::ostringstream out;
  out << "# portfolio problem=" << engine::to_string(r.problem)
      << " defense-budget=" << format_num(r.defense_budget)
      << " attacker-budget=" << format_num(r.attacker_budget)
      << " evaluated=" << r.evaluated << " pruned=" << r.pruned << '\n'
      << "invest\tresidual\tportfolio\n";
  for (const PortfolioPoint& p : r.frontier) {
    out << format_num(p.invest) << '\t' << format_num(p.residual) << "\t{";
    for (std::size_t i = 0; i < p.selected.size(); ++i)
      out << (i ? ", " : "") << p.selected[i];
    out << "}\n";
  }
  return out.str();
}

}  // namespace atcd::analysis
