#pragma once
/// \file analysis.hpp
/// Shared vocabulary of the scenario-analysis subsystem.
///
/// The paper's cost-damage Pareto fronts are inputs to security
/// decisions, not one-shot answers: which leaf parameters actually move
/// the front?  What is the best set of defenses under a defender
/// budget?  How does the front shift as a cost estimate varies?  The
/// three modules of src/analysis/ answer these by turning one model
/// into many derived solves and aggregating the results:
///
///   * sweep.hpp       — 1D/2D grids over a leaf attribute or defense
///                       toggle, replayed through an incremental
///                       service::Session (each grid point pays only a
///                       root-path recompute on treelike models).
///   * sensitivity.hpp — finite-difference perturbation of every leaf
///                       parameter, ranked by pareto/metrics.hpp's
///                       front-distance.
///   * portfolio.hpp   — optimal defense-subset selection under a
///                       defender budget, with the residual solves
///                       fanned out through engine::solve_all.
///
/// All three are deterministic by construction: derived instances are
/// solved independently (engine::solve_all is order-preserving and
/// thread-count independent) and aggregation is a pure function of the
/// results, so the rendered tables are byte-identical across thread
/// counts (tests/test_analysis.cpp pins this).

#include <optional>
#include <string>
#include <vector>

#include "defense/defense.hpp"
#include "engine/batch.hpp"
#include "service/subtree_cache.hpp"

namespace atcd::analysis {

/// A sweepable / perturbable model parameter.  Cost and Prob attach to a
/// BAS (per BAS index); Damage attaches to any node; Defense is the
/// session-style hardening toggle of a BAS (axis values are 0 = off,
/// nonzero = hardened).
enum class Attribute { Cost, Prob, Damage, Defense };

const char* to_string(Attribute a);

/// One sweep axis: the grid of values an attribute of one node runs
/// through.
struct Axis {
  Attribute attribute = Attribute::Cost;
  std::string node;            ///< BAS name (Cost/Prob/Defense) or any node
  std::vector<double> values;  ///< grid values, in sweep order

  /// Evenly spaced grid of \p steps >= 1 values over [lo, hi] (a single
  /// step collapses to lo).
  static Axis linspace(Attribute attribute, std::string node, double lo,
                       double hi, std::size_t steps);
  /// The {0, 1} off/on axis of a defense toggle.
  static Axis toggle(std::string bas);
};

/// Parses the protocol/CLI axis spec
///   <attr>:<node>:<lo>:<hi>:<steps>   with <attr> in cost|prob|damage
///   defense:<bas>                      (values 0, 1 implied)
/// Returns nullopt and sets \p error on a malformed spec.
std::optional<Axis> parse_axis(const std::string& spec, std::string* error);

/// Shortest round-trippable decimal rendering ("%.17g"-style, trimmed):
/// the one number format every analysis table uses, so rendered tables
/// are byte-stable across runs and thread counts.
std::string format_num(double v);

/// Parses the protocol/CLI countermeasure spec
///   <name>:<cost>:<bas>[+<bas>...]
/// Returns nullopt and sets \p error on a malformed spec.
std::optional<defense::Countermeasure> parse_countermeasure(
    const std::string& spec, std::string* error);

/// Knobs shared by the three analyses.  `problem`/`bound` select the
/// per-scenario solve (sensitivity ignores them: it always compares the
/// model's front problem; portfolio reads `bound` as the attacker
/// budget of the residual DgC/EDgC).  `batch` carries the registry /
/// policy / thread count for fan-outs, and `shared` layers the
/// service-wide subtree cache under every derived solve so scenarios
/// that differ in one leaf reuse each other's subtree fronts.
struct Options {
  engine::Problem problem = engine::Problem::Cdpf;
  double bound = 0.0;        ///< budget/threshold; ignored by the fronts
  std::string engine_name;   ///< explicit engine; "" = planner's choice
  engine::BatchOptions batch;
  service::SubtreeCache* shared = nullptr;
  /// Hardening applied by Defense axes and portfolio selections.  The
  /// cost factor is finite so every backend stays exact — including BILP
  /// on hardened DAG models, whose simplex equilibrates rows and columns
  /// (lp.cpp) and stays stable to factors of 1e9 and beyond.  1e6 dwarfs
  /// every realistic attacker budget while keeping hardened-plus-base
  /// cost sums well inside exact double range.
  defense::HardeningSemantics hardening{1e6, 0.0};
  /// Sensitivity's relative finite-difference step: costs and damages
  /// are scaled by (1 + step), probabilities by 1 / (1 + step).
  double sensitivity_step = 0.05;
  /// Portfolio enumeration guard: 2^|catalogue| scenario cap.
  std::size_t max_portfolio_defenses = 20;
};

}  // namespace atcd::analysis
