#include "analysis/sensitivity.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "pareto/metrics.hpp"

namespace atcd::analysis {
namespace {

/// The perturbation of one parameter: costs and damages scale up, so a
/// zero base gets the step as an absolute bump (a relative step would be
/// a no-op); probabilities scale *down* so they stay in [0, 1] with no
/// clamping (a clamp would silently shrink the step near 1).
double perturb(Attribute attribute, double base, double step) {
  if (attribute == Attribute::Prob) return base / (1.0 + step);
  return base > 0.0 ? base * (1.0 + step) : step;
}

template <class Model>
void apply(Model& m, const SensitivityEntry& e, NodeId leaf) {
  const std::uint32_t i = m.tree.bas_index(leaf);
  switch (e.attribute) {
    case Attribute::Cost:
      m.cost[i] = e.perturbed;
      break;
    case Attribute::Damage:
      m.damage[leaf] = e.perturbed;
      break;
    case Attribute::Prob:
      if constexpr (std::is_same_v<Model, CdpAt>) m.prob[i] = e.perturbed;
      break;
    case Attribute::Defense:
      break;  // not a leaf parameter; never generated below
  }
}

template <class Model>
SensitivityReport sensitivity_impl(const Model& m, const Options& opt) {
  constexpr bool probabilistic = std::is_same_v<Model, CdpAt>;
  SensitivityReport report;
  report.problem =
      probabilistic ? engine::Problem::Cedpf : engine::Problem::Cdpf;
  report.step = opt.sensitivity_step;

  // One entry per leaf parameter, in BAS-index order (the ranking's
  // deterministic tie-break order).
  std::vector<NodeId> leaf_of;
  for (NodeId v : m.tree.bas_ids()) {
    const std::uint32_t i = m.tree.bas_index(v);
    std::vector<std::pair<Attribute, double>> params = {
        {Attribute::Cost, m.cost[i]}, {Attribute::Damage, m.damage[v]}};
    if constexpr (probabilistic)
      params.push_back({Attribute::Prob, m.prob[i]});
    for (const auto& [attribute, base] : params) {
      SensitivityEntry e;
      e.node = m.tree.name(v);
      e.attribute = attribute;
      e.base = base;
      e.perturbed = perturb(attribute, base, report.step);
      report.ranking.push_back(std::move(e));
      leaf_of.push_back(v);
    }
  }

  // Fan the base solve plus every distinct scenario out through
  // solve_all; the shared subtree cache (if any) lets scenarios reuse
  // every subtree front the perturbed leaf does not sit under.
  engine::BatchOptions batch = opt.batch;
  if (!batch.subtree && opt.shared) batch.subtree = opt.shared;
  std::vector<Model> models;
  std::vector<engine::Instance> instances;
  models.reserve(report.ranking.size());
  instances.reserve(report.ranking.size() + 1);
  instances.push_back(
      engine::Instance::of(report.problem, m, 0.0, opt.engine_name));
  std::vector<std::size_t> instance_of(report.ranking.size(), 0);
  for (std::size_t k = 0; k < report.ranking.size(); ++k) {
    const SensitivityEntry& e = report.ranking[k];
    if (e.perturbed == e.base) continue;  // no-op scenario: distance 0
    models.push_back(m);
    apply(models.back(), e, leaf_of[k]);
    instance_of[k] = instances.size();
    instances.push_back(engine::Instance::of(report.problem, models.back(),
                                             0.0, opt.engine_name));
  }
  const std::vector<engine::SolveResult> results =
      engine::solve_all(instances, batch);

  if (!results[0].ok)
    throw Error("sensitivity: base solve failed: " + results[0].error);
  report.base = results[0].front;
  for (std::size_t k = 0; k < report.ranking.size(); ++k) {
    if (instance_of[k] == 0) continue;
    const engine::SolveResult& r = results[instance_of[k]];
    if (!r.ok) {
      report.ranking[k].error = r.error;
      continue;
    }
    report.ranking[k].distance = front_distance(report.base, r.front);
  }
  std::stable_sort(report.ranking.begin(), report.ranking.end(),
                   [](const SensitivityEntry& a, const SensitivityEntry& b) {
                     if (a.distance != b.distance)
                       return a.distance > b.distance;
                     if (a.attribute != b.attribute)
                       return static_cast<int>(a.attribute) <
                              static_cast<int>(b.attribute);
                     return a.node < b.node;
                   });
  return report;
}

}  // namespace

SensitivityReport sensitivity(const CdAt& m, const Options& opt) {
  return sensitivity_impl(m, opt);
}

SensitivityReport sensitivity(const CdpAt& m, const Options& opt) {
  return sensitivity_impl(m, opt);
}

std::string to_table(const SensitivityReport& report) {
  std::ostringstream out;
  out << "# sensitivity problem=" << engine::to_string(report.problem)
      << " step=" << format_num(report.step)
      << " base-points=" << report.base.size() << '\n'
      << "rank\tparameter\tbase\tperturbed\tdistance\n";
  for (std::size_t i = 0; i < report.ranking.size(); ++i) {
    const SensitivityEntry& e = report.ranking[i];
    out << i + 1 << '\t' << to_string(e.attribute) << ':' << e.node << '\t'
        << format_num(e.base) << '\t' << format_num(e.perturbed) << '\t';
    if (!e.error.empty()) {
      std::string err = e.error;
      std::replace(err.begin(), err.end(), '\n', ' ');
      out << "error=" << err << '\n';
    } else {
      out << format_num(e.distance) << '\n';
    }
  }
  return out.str();
}

}  // namespace atcd::analysis
