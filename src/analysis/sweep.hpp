#pragma once
/// \file sweep.hpp
/// Parameter sweeps: how does the solution move as one or two model
/// parameters run over a grid?
///
/// A sweep replays an *ordered edit script* through an incremental
/// service::Session: consecutive grid points differ in exactly one leaf
/// attribute (two at a 2D row boundary), so on treelike models each
/// point pays only the edited leaf's root-path recompute — the rest of
/// the tree's per-node fronts come straight from the session memo
/// (bench/analysis_sweep.cpp quantifies the win over from-scratch
/// per-point solves).  DAG models transparently fall back to full
/// solves per point through the same Session, so sweeps work on every
/// model class the engines support; Options::shared additionally layers
/// the service-wide SubtreeCache under the session either way.
///
/// Cells are solved in a fixed order and the result vector is indexed
/// by grid coordinates, so sweep output — and its to_table() rendering —
/// is deterministic: same model + same axes = byte-identical tables,
/// independent of threads or cache state (tests/test_analysis.cpp).

#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "service/session.hpp"

namespace atcd::analysis {

/// One grid point: the axis value(s) it was solved at and the solve
/// outcome (per-cell failures are captured, not thrown).
struct SweepCell {
  double x = 0.0;
  double y = 0.0;  ///< 0 for 1D sweeps
  engine::SolveResult result;
};

struct SweepResult {
  engine::Problem problem = engine::Problem::Cdpf;
  std::vector<Axis> axes;  ///< the 1 or 2 swept axes, echoed
  /// Row-major over the grid: cell (xi, yi) is cells[yi * nx + xi]
  /// where nx = axes[0].values.size().
  std::vector<SweepCell> cells;
  /// True when the session's incremental fast path could engage
  /// (treelike model); false = the DAG from-scratch fallback ran.
  bool incremental = false;
  service::Session::MemoStats memo;  ///< session memo counters
};

/// Sweeps 1 or 2 axes over the model.  Axes are validated up front
/// (node exists, attribute applies, values in range) — ModelError names
/// the offending axis; per-cell *solver* failures land in the cell's
/// result instead.  axes[0] varies fastest.
SweepResult sweep(const CdAt& m, std::vector<Axis> axes, const Options& opt);
SweepResult sweep(const CdpAt& m, std::vector<Axis> axes, const Options& opt);

/// Stable tab-separated rendering: a '#' header naming the axes and
/// problem, a column-header line, then one line per cell in cell order.
/// Front problems report the front size and its hypervolume against the
/// sweep-wide max point cost; single-objective problems report
/// feasible/cost/damage.  Byte-identical for identical sweep results.
std::string to_table(const SweepResult& result);

}  // namespace atcd::analysis
