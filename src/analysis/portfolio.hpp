#pragma once
/// \file portfolio.hpp
/// Defense-portfolio optimization: which set of countermeasures should
/// the defender buy under a budget?
///
/// Each countermeasure carries a deployment cost and hardens a set of
/// BASs (defense::Countermeasure; the hardening semantics are the
/// session defaults — finite cost factor, zero probability factor — so
/// every backend stays exact).  portfolio() searches the subsets of the
/// catalogue whose total deployment cost fits the defender budget,
/// scores each by the *residual damage* — the attacker's optimal DgC
/// (deterministic) / EDgC (probabilistic) value on the hardened model
/// under the attacker budget Options::bound — and returns both the best
/// affordable portfolio and the full investment-vs-residual frontier
/// (the defender analogue of CDPF: minimal deployment cost per
/// attainable residual level).
///
/// Enumeration is over defense toggles with budget-based
/// branch-and-bound (the DFS cuts every subset extending an
/// unaffordable selection), and the surviving hardened scenarios fan out
/// through engine::solve_all — the planner routes each to bottom-up /
/// knapsack / BILP / BDD as the hardened model's class dictates, and
/// the shared SubtreeCache (Options::shared) lets scenarios reuse the
/// fronts of subtrees no selected defense touches.  Results are
/// deterministic across thread counts; ties resolve toward cheaper and
/// lexicographically earlier portfolios (tests/test_analysis.cpp
/// cross-validates against plain brute-force enumeration).

#include <string>
#include <vector>

#include "analysis/analysis.hpp"

namespace atcd::analysis {

/// One scored portfolio.
struct PortfolioPoint {
  double invest = 0.0;    ///< total deployment cost of the selection
  double residual = 0.0;  ///< attacker's optimal damage on the hardened model
  std::vector<std::string> selected;  ///< countermeasure names, catalogue order
};

struct PortfolioResult {
  engine::Problem problem = engine::Problem::Dgc;  ///< residual problem
  double defense_budget = 0.0;   ///< echoed budget
  double attacker_budget = 0.0;  ///< echoed Options::bound
  /// Pareto frontier over affordable portfolios: ascending investment,
  /// strictly descending residual (the empty portfolio anchors it).
  std::vector<PortfolioPoint> frontier;
  /// The minimal-residual affordable portfolio (ties: cheaper, then
  /// lexicographically earlier selection) — the last frontier point.
  PortfolioPoint best;
  std::uint64_t evaluated = 0;  ///< hardened scenarios solved
  std::uint64_t pruned = 0;     ///< subsets cut by the budget bound
};

/// Optimizes the defense portfolio.  Throws CapacityError when the
/// catalogue exceeds Options::max_portfolio_defenses, ModelError on
/// unknown BAS names, and Error when a residual solve fails.
/// Options::bound is the attacker budget; problem is ignored — DgC for
/// CdAt, EDgC for CdpAt.  Passing infinity means "unbounded attacker"
/// and clamps to twice the model's total base leaf cost (+1), which
/// affords every un-hardened attack while keeping hardened leaves
/// unattractive — a truly infinite budget would ignore the finite
/// hardening altogether.
PortfolioResult portfolio(const CdAt& m,
                          const std::vector<defense::Countermeasure>& catalogue,
                          double defense_budget, const Options& opt);
PortfolioResult portfolio(const CdpAt& m,
                          const std::vector<defense::Countermeasure>& catalogue,
                          double defense_budget, const Options& opt);

/// Stable tab-separated rendering: '#' header (budgets, counts), column
/// header, one line per frontier point (invest, residual, portfolio).
std::string to_table(const PortfolioResult& result);

}  // namespace atcd::analysis
