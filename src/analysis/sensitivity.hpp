#pragma once
/// \file sensitivity.hpp
/// Sensitivity ranking: which leaf parameters actually move the Pareto
/// front?
///
/// Decorations are estimates; before acting on a front an analyst wants
/// to know which of them the conclusions hinge on.  sensitivity()
/// perturbs every leaf parameter by a relative finite-difference step —
/// each BAS's cost and damage scaled up by (1 + step), each success
/// probability scaled down by 1 / (1 + step) so it stays in [0, 1] —
/// re-solves the model's front problem (CDPF / CEDPF) once per
/// perturbation, and ranks the parameters by pareto/metrics.hpp's
/// front_distance between the perturbed and base fronts: the maximal
/// attainable-damage shift at equal cost.
///
/// The perturbed instances differ from the base model in exactly one
/// leaf, so fanning them through engine::solve_all with the shared
/// SubtreeCache attached (Options::shared) lets every solve reuse all
/// untouched subtree fronts — the same mechanism incremental sessions
/// use, here across a batch of sibling scenarios.  Results are
/// deterministic across thread counts; ties in the ranking break by
/// (attribute, node name).

#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "pareto/front2d.hpp"

namespace atcd::analysis {

/// One ranked parameter.
struct SensitivityEntry {
  std::string node;          ///< BAS name (damage: the leaf's node name)
  Attribute attribute = Attribute::Cost;  ///< Cost, Damage, or Prob
  double base = 0.0;         ///< the parameter's model value
  double perturbed = 0.0;    ///< the value the scenario solved with
  double distance = 0.0;     ///< front_distance(base front, perturbed front)
  std::string error;         ///< non-empty when the scenario solve failed
};

struct SensitivityReport {
  engine::Problem problem = engine::Problem::Cdpf;  ///< the compared front
  double step = 0.0;                     ///< the relative step used
  Front2d base;                          ///< the unperturbed front
  std::vector<SensitivityEntry> ranking; ///< descending by distance
};

/// Ranks every leaf parameter of the model (cost and damage per BAS,
/// plus success probability for probabilistic models) by its
/// finite-difference impact on the front.  Options::sensitivity_step
/// sets the relative step; problem/bound are ignored — the metric is
/// front-based, CDPF for CdAt and CEDPF for CdpAt.  Throws Error when
/// the base solve fails (per-perturbation failures rank last with a
/// zero distance and are reported in the table).
SensitivityReport sensitivity(const CdAt& m, const Options& opt);
SensitivityReport sensitivity(const CdpAt& m, const Options& opt);

/// Stable tab-separated rendering: '#' header, column header, one line
/// per ranked parameter (rank, attribute:node, base, perturbed,
/// distance).  Byte-identical for identical reports.
std::string to_table(const SensitivityReport& report);

}  // namespace atcd::analysis
